//! Shared simulator types: time, queries, plans, observations, and the controller
//! interface implemented by Loki and the baseline systems.

use loki_pipeline::{BatchSize, VariantId};
use loki_workload::DemandHistory;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Simulated time in microseconds since the start of the run.
pub type SimTime = u64;

/// Convert seconds to simulated microseconds.
///
/// `+ 0.5` then truncate is round-half-up, identical to `round()` for the
/// non-negative times used throughout, and compiles to a bare `cvttsd2si`
/// instead of a libm call on baseline x86-64 — this sits on the hot path.
#[inline]
pub fn secs_to_us(s: f64) -> SimTime {
    debug_assert!(s >= 0.0);
    (s * 1_000_000.0 + 0.5) as SimTime
}

/// Convert milliseconds to simulated microseconds (see [`secs_to_us`] for the
/// rounding rationale).
#[inline]
pub fn ms_to_us(ms: f64) -> SimTime {
    debug_assert!(ms >= 0.0);
    (ms * 1_000.0 + 0.5) as SimTime
}

/// Convert simulated microseconds to seconds.
pub fn us_to_secs(us: SimTime) -> f64 {
    us as f64 / 1_000_000.0
}

/// Convert simulated microseconds to milliseconds.
#[inline]
pub fn us_to_ms(us: SimTime) -> f64 {
    us as f64 * 1e-3
}

/// The per-link network-delay model of the simulated cluster (Section 6.1 runs
/// everything on one homogeneous testbed; heterogeneous interconnects — PCIe
/// between co-located stages, datacenter network between racks — need per-link
/// delays).
///
/// A *hop* is one network traversal of a query: frontend → first-task worker, or
/// an upstream worker → a downstream worker. The engine compiles the model into
/// dense microsecond tables ([`LinkDelayModel::compile`]) so the dispatch path
/// pays one array index per hop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum LinkDelayModel {
    /// Every hop takes [`SimConfig::network_delay_ms`]: the historical
    /// single-constant model.
    #[default]
    Uniform,
    /// Per-pipeline-edge delays: a hop carrying a query from a worker of task
    /// `from` into task `to` takes the delay listed for `(from, to)`;
    /// unlisted edges take `default_ms` and frontend → root-task hops take
    /// `frontend_ms`. Every listed edge must reference tasks that exist in the
    /// pipeline the simulation runs — [`LinkDelayModel::compile`] rejects
    /// out-of-range edges loudly.
    PerEdge {
        /// Frontend → first-task hop delay (ms).
        frontend_ms: f64,
        /// Delay of pipeline edges not listed in `edges` (ms).
        default_ms: f64,
        /// `((from_task, to_task), delay_ms)` overrides.
        edges: Vec<((usize, usize), f64)>,
    },
    /// Per-worker-class delays: workers are striped round-robin over `classes`
    /// interconnect classes (worker `w` belongs to class `w % classes`), and a
    /// hop from a worker of class `a` to one of class `b` takes
    /// `delay_ms[a * classes + b]`. Frontend hops into class `b` take
    /// `frontend_ms[b]`.
    PerWorkerClass {
        /// Number of interconnect classes.
        classes: usize,
        /// Row-major `classes x classes` delay matrix (ms).
        delay_ms: Vec<f64>,
        /// Frontend → class delay vector (ms), `classes` long.
        frontend_ms: Vec<f64>,
    },
}

impl LinkDelayModel {
    /// Check internal consistency (matrix shapes, non-negative finite delays).
    pub fn validate(&self) -> Result<(), String> {
        let ok = |v: f64| v.is_finite() && v >= 0.0;
        match self {
            LinkDelayModel::Uniform => Ok(()),
            LinkDelayModel::PerEdge {
                frontend_ms,
                default_ms,
                edges,
            } => {
                if !ok(*frontend_ms) || !ok(*default_ms) {
                    return Err("per-edge frontend/default delays must be finite and >= 0".into());
                }
                for ((from, to), ms) in edges {
                    if !ok(*ms) {
                        return Err(format!("edge ({from}, {to}) delay must be finite and >= 0"));
                    }
                }
                Ok(())
            }
            LinkDelayModel::PerWorkerClass {
                classes,
                delay_ms,
                frontend_ms,
            } => {
                if *classes == 0 {
                    return Err("per-class model needs at least one class".into());
                }
                if delay_ms.len() != classes * classes {
                    return Err(format!(
                        "delay matrix must be {classes}x{classes} (got {} entries)",
                        delay_ms.len()
                    ));
                }
                if frontend_ms.len() != *classes {
                    return Err(format!(
                        "frontend delay vector must have {classes} entries (got {})",
                        frontend_ms.len()
                    ));
                }
                if delay_ms.iter().chain(frontend_ms).any(|v| !ok(*v)) {
                    return Err("per-class delays must be finite and >= 0".into());
                }
                Ok(())
            }
        }
    }

    /// The worst-case single-hop delay (ms). Controllers budget the SLO with
    /// this so latency decomposition stays safe on the slowest link;
    /// `uniform_ms` is the [`SimConfig::network_delay_ms`] the `Uniform` model
    /// resolves to.
    pub fn max_hop_ms(&self, uniform_ms: f64) -> f64 {
        match self {
            LinkDelayModel::Uniform => uniform_ms,
            LinkDelayModel::PerEdge {
                frontend_ms,
                default_ms,
                edges,
            } => edges
                .iter()
                .map(|(_, ms)| *ms)
                .fold(frontend_ms.max(*default_ms), f64::max),
            LinkDelayModel::PerWorkerClass {
                delay_ms,
                frontend_ms,
                ..
            } => delay_ms
                .iter()
                .chain(frontend_ms)
                .fold(0.0f64, |a, &b| a.max(b)),
        }
    }

    /// The `(min, max)` single-hop delay range (ms) over every hop this model
    /// can produce, frontend hops included; `uniform_ms` is what the `Uniform`
    /// model resolves to. The engine sizes the calendar-queue wheel from this
    /// range (see [`crate::calendar::CalendarGeometry`]).
    pub fn hop_range_ms(&self, uniform_ms: f64) -> (f64, f64) {
        let max = self.max_hop_ms(uniform_ms);
        let min = match self {
            LinkDelayModel::Uniform => uniform_ms,
            LinkDelayModel::PerEdge {
                frontend_ms,
                default_ms,
                edges,
            } => edges
                .iter()
                .map(|(_, ms)| *ms)
                .fold(frontend_ms.min(*default_ms), f64::min),
            LinkDelayModel::PerWorkerClass {
                delay_ms,
                frontend_ms,
                ..
            } => delay_ms
                .iter()
                .chain(frontend_ms)
                .fold(f64::INFINITY, |a, &b| a.min(b)),
        };
        (min.min(max), max)
    }

    /// Derive the per-hop latency-budget tables a controller should plan
    /// with, in milliseconds. Exact for `Uniform` and `PerEdge`; for
    /// `PerWorkerClass` the worker placement is not known at planning time,
    /// so every entry is the conservative worst case over classes (which
    /// still beats collapsing the whole model to one scalar worst hop:
    /// `PerEdge`'s cheap edges stop being taxed for the expensive ones).
    pub fn hop_budgets(&self, uniform_ms: f64, num_tasks: usize) -> HopBudgets {
        match self {
            LinkDelayModel::Uniform => HopBudgets::uniform(uniform_ms, num_tasks),
            LinkDelayModel::PerEdge {
                frontend_ms,
                default_ms,
                edges,
            } => {
                let mut edge_ms = vec![*default_ms; num_tasks * num_tasks];
                for ((from, to), ms) in edges {
                    if *from < num_tasks && *to < num_tasks {
                        edge_ms[from * num_tasks + to] = *ms;
                    }
                }
                HopBudgets {
                    frontend_ms: *frontend_ms,
                    num_tasks,
                    edge_ms,
                }
            }
            LinkDelayModel::PerWorkerClass {
                delay_ms,
                frontend_ms,
                ..
            } => {
                let worst_edge = delay_ms.iter().fold(0.0f64, |a, &b| a.max(b));
                let worst_frontend = frontend_ms.iter().fold(0.0f64, |a, &b| a.max(b));
                HopBudgets {
                    frontend_ms: worst_frontend,
                    num_tasks,
                    edge_ms: vec![worst_edge; num_tasks * num_tasks],
                }
            }
        }
    }

    /// Planning-time estimate of the frontend → `dst` hop delay (ms),
    /// mirroring [`CompiledLinkDelays::frontend_us`] (including the
    /// round-robin class striping rule). Used by link-aware candidate
    /// ordering in the Load Balancer.
    pub fn frontend_worker_hop_ms(&self, dst: WorkerId, uniform_ms: f64) -> f64 {
        match self {
            LinkDelayModel::Uniform => uniform_ms,
            LinkDelayModel::PerEdge { frontend_ms, .. } => *frontend_ms,
            LinkDelayModel::PerWorkerClass {
                classes,
                frontend_ms,
                ..
            } => frontend_ms[dst.index() % classes],
        }
    }

    /// Planning-time estimate of the `src` (hosting `src_task`) → `dst`
    /// (hosting `dst_task`) hop delay (ms), mirroring
    /// [`CompiledLinkDelays::hop_us`]. Used by link-aware candidate ordering.
    pub fn worker_hop_ms(
        &self,
        src: WorkerId,
        src_task: usize,
        dst: WorkerId,
        dst_task: usize,
        uniform_ms: f64,
    ) -> f64 {
        match self {
            LinkDelayModel::Uniform => uniform_ms,
            LinkDelayModel::PerEdge {
                default_ms, edges, ..
            } => {
                let _ = (src, dst);
                edges
                    .iter()
                    .find(|((f, t), _)| *f == src_task && *t == dst_task)
                    .map(|(_, ms)| *ms)
                    .unwrap_or(*default_ms)
            }
            LinkDelayModel::PerWorkerClass {
                classes, delay_ms, ..
            } => {
                let _ = (src_task, dst_task);
                delay_ms[(src.index() % classes) * classes + (dst.index() % classes)]
            }
        }
    }

    /// Compile into dense per-hop microsecond tables for the engine's dispatch
    /// path. Panics when [`LinkDelayModel::validate`] fails — the engine calls
    /// this once at construction, where a bad model is a configuration error.
    pub fn compile(
        &self,
        uniform_ms: f64,
        cluster_size: usize,
        num_tasks: usize,
    ) -> CompiledLinkDelays {
        self.validate().expect("link-delay model must be valid");
        match self {
            LinkDelayModel::Uniform => CompiledLinkDelays::Uniform {
                hop_us: ms_to_us(uniform_ms),
            },
            LinkDelayModel::PerEdge {
                frontend_ms,
                default_ms,
                edges,
            } => {
                let mut edge_us = vec![ms_to_us(*default_ms); num_tasks * num_tasks];
                for ((from, to), ms) in edges {
                    // Out-of-range edges must fail loudly: silently skipping
                    // them would leave the simulated network charging
                    // `default_ms` while `max_hop_ms` (planner budgeting)
                    // still counts the listed delay — a quiet disagreement
                    // between controller and data plane.
                    assert!(
                        *from < num_tasks && *to < num_tasks,
                        "per-edge link delay references edge ({from}, {to}) \
                         outside a {num_tasks}-task pipeline"
                    );
                    edge_us[from * num_tasks + to] = ms_to_us(*ms);
                }
                CompiledLinkDelays::PerEdge {
                    frontend_us: ms_to_us(*frontend_ms),
                    num_tasks,
                    edge_us,
                }
            }
            LinkDelayModel::PerWorkerClass {
                classes,
                delay_ms,
                frontend_ms,
            } => CompiledLinkDelays::PerClass {
                classes: *classes,
                class_of: (0..cluster_size).map(|w| (w % classes) as u32).collect(),
                hop_us: delay_ms.iter().map(|&ms| ms_to_us(ms)).collect(),
                frontend_us: frontend_ms.iter().map(|&ms| ms_to_us(ms)).collect(),
            },
        }
    }
}

/// Dense microsecond form of a [`LinkDelayModel`], one array index per hop.
#[derive(Debug, Clone)]
pub enum CompiledLinkDelays {
    /// One constant for every hop.
    Uniform {
        /// The hop delay in µs.
        hop_us: SimTime,
    },
    /// Per-pipeline-edge delays, `edge_us[from * num_tasks + to]`.
    PerEdge {
        /// Frontend hop delay in µs.
        frontend_us: SimTime,
        /// Row length of `edge_us`.
        num_tasks: usize,
        /// Dense `(from, to)` → µs table.
        edge_us: Vec<SimTime>,
    },
    /// Per-worker-class delays, `hop_us[class(src) * classes + class(dst)]`.
    PerClass {
        /// Number of interconnect classes.
        classes: usize,
        /// Worker index → class.
        class_of: Vec<u32>,
        /// Dense class-pair → µs matrix.
        hop_us: Vec<SimTime>,
        /// Frontend → class delays in µs.
        frontend_us: Vec<SimTime>,
    },
}

impl CompiledLinkDelays {
    /// Interconnect class of a worker under the per-class model. The dense
    /// `class_of` table covers the fleet size at compile time; workers
    /// provisioned past it (elastic fleets grow, and retired slots are never
    /// reused) fall back to the striping rule the table caches.
    #[inline]
    fn striped_class(class_of: &[u32], classes: usize, w: WorkerId) -> usize {
        class_of
            .get(w.index())
            .map(|&c| c as usize)
            .unwrap_or(w.index() % classes)
    }

    /// Delay of a frontend → `dst` hop, in µs.
    #[inline]
    pub fn frontend_us(&self, dst: WorkerId) -> SimTime {
        match self {
            CompiledLinkDelays::Uniform { hop_us } => *hop_us,
            CompiledLinkDelays::PerEdge { frontend_us, .. } => *frontend_us,
            CompiledLinkDelays::PerClass {
                classes,
                class_of,
                frontend_us,
                ..
            } => frontend_us[Self::striped_class(class_of, *classes, dst)],
        }
    }

    /// Delay of a hop from a worker of `src_task` to a downstream worker of
    /// `dst_task`, in µs.
    #[inline]
    pub fn hop_us(
        &self,
        src: WorkerId,
        src_task: usize,
        dst: WorkerId,
        dst_task: usize,
    ) -> SimTime {
        match self {
            CompiledLinkDelays::Uniform { hop_us } => *hop_us,
            CompiledLinkDelays::PerEdge {
                num_tasks, edge_us, ..
            } => {
                let _ = (src, dst);
                edge_us[src_task * num_tasks + dst_task]
            }
            CompiledLinkDelays::PerClass {
                classes,
                class_of,
                hop_us,
                ..
            } => {
                let _ = (src_task, dst_task);
                hop_us[Self::striped_class(class_of, *classes, src) * classes
                    + Self::striped_class(class_of, *classes, dst)]
            }
        }
    }
}

/// Per-hop latency budgets a controller plans the SLO decomposition with, in
/// milliseconds: one frontend-hop budget plus a dense per-pipeline-edge table.
/// Derived from the run's [`LinkDelayModel`] by [`LinkDelayModel::hop_budgets`]
/// (or [`HopBudgets::uniform`] for the historical single-scalar behaviour).
///
/// Replaces the scalar `effective_comm_ms` the planners used to budget every
/// hop with: a path through cheap PCIe edges is no longer taxed as if every
/// hop crossed the slowest network link.
#[derive(Debug, Clone, PartialEq)]
pub struct HopBudgets {
    /// Budget of a frontend → root-task hop (also charged for the final
    /// aggregation hop back to the frontend).
    frontend_ms: f64,
    /// Row length of `edge_ms`.
    num_tasks: usize,
    /// Dense `(parent_task, child_task)` → ms budget table.
    edge_ms: Vec<f64>,
}

impl HopBudgets {
    /// Budgets where every hop (frontend and edges) costs `hop_ms`: exactly
    /// the historical scalar model.
    pub fn uniform(hop_ms: f64, num_tasks: usize) -> HopBudgets {
        HopBudgets {
            frontend_ms: hop_ms,
            num_tasks,
            edge_ms: vec![hop_ms; num_tasks * num_tasks],
        }
    }

    /// Number of tasks the edge table covers.
    pub fn num_tasks(&self) -> usize {
        self.num_tasks
    }

    /// Budget of a frontend hop (ms).
    #[inline]
    pub fn frontend_ms(&self) -> f64 {
        self.frontend_ms
    }

    /// Budget of the `parent → child` pipeline edge (ms); out-of-range edges
    /// fall back to the worst edge budget (conservative).
    #[inline]
    pub fn edge_ms(&self, parent: usize, child: usize) -> f64 {
        self.edge_ms
            .get(parent * self.num_tasks + child)
            .copied()
            .unwrap_or_else(|| self.worst_edge_ms())
    }

    /// The largest per-edge budget (ms); 0 for a task-less pipeline.
    pub fn worst_edge_ms(&self) -> f64 {
        self.edge_ms.iter().fold(0.0f64, |a, &b| a.max(b))
    }

    /// The largest single-hop budget, frontend included (ms). Collapsing the
    /// budgets through this reproduces the legacy scalar `effective_comm_ms`.
    pub fn worst_hop_ms(&self) -> f64 {
        self.frontend_ms.max(self.worst_edge_ms())
    }

    /// Total communication budget of a root-to-sink path visiting `tasks` in
    /// order (ms): the frontend hop in, every traversed edge, and the final
    /// aggregation hop back out. Under uniform budgets `c` this is exactly
    /// the legacy `c * (len + 1)`.
    pub fn path_comm_ms(&self, tasks: &[usize]) -> f64 {
        let mut total = 2.0 * self.frontend_ms;
        for pair in tasks.windows(2) {
            total += self.edge_ms(pair[0], pair[1]);
        }
        total
    }

    /// Worst-case communication budget of *any* path of `len` tasks (ms):
    /// the legacy length-based decomposition, kept for planners that bound
    /// paths by length before enumerating them. Equals `path_comm_ms` for
    /// every path under uniform budgets.
    pub fn worst_path_comm_ms(&self, len: usize) -> f64 {
        2.0 * self.frontend_ms + self.worst_edge_ms() * len.saturating_sub(1) as f64
    }
}

/// How the Load Balancer orders equally attractive worker candidates when
/// spreading demand (`route=` in the bench harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum RouteMode {
    /// Accuracy-first ordering (ties broken by worker id): the historical
    /// behaviour, bit-identical to every pre-`route=` run.
    #[default]
    Accuracy,
    /// Accuracy-first, but ties (replicas of the same variant) are ordered by
    /// the actual upstream-hop delay from the run's [`LinkDelayModel`], so
    /// demand prefers network-local replicas on heterogeneous interconnects.
    LinkAware,
}

impl RouteMode {
    /// Short label used by the bench harness (`route=` values).
    pub fn label(&self) -> &'static str {
        match self {
            RouteMode::Accuracy => "accuracy",
            RouteMode::LinkAware => "link-aware",
        }
    }

    /// Parse a `route=` value.
    pub fn parse(s: &str) -> Option<RouteMode> {
        match s {
            "accuracy" => Some(RouteMode::Accuracy),
            "link-aware" | "linkaware" | "link_aware" => Some(RouteMode::LinkAware),
            _ => None,
        }
    }
}

/// Identifier of a worker (GPU) in the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub usize);

impl WorkerId {
    /// The underlying index into the cluster's worker array.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl std::fmt::Display for WorkerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// The runtime early-dropping policy executed by the data plane (Section 5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum DropPolicy {
    /// Never drop; requests that finish past their SLO simply count as violations.
    NoEarlyDropping,
    /// Drop a query at the last task when its remaining time budget is smaller than
    /// the expected processing time there.
    LastTask,
    /// Drop a query at any task where it exceeded that task's latency budget.
    PerTask,
    /// Loki's mechanism: when a query exceeds a task's latency budget, try to reroute
    /// it to a faster downstream worker from the backup table; drop it only if no
    /// rescue worker exists.
    #[default]
    OpportunisticRerouting,
}

impl DropPolicy {
    /// All policies, in the order the paper's ablation (Figure 7) presents them.
    pub fn all() -> [DropPolicy; 4] {
        [
            DropPolicy::NoEarlyDropping,
            DropPolicy::LastTask,
            DropPolicy::PerTask,
            DropPolicy::OpportunisticRerouting,
        ]
    }

    /// Short human-readable label used by the bench harness.
    pub fn label(&self) -> &'static str {
        match self {
            DropPolicy::NoEarlyDropping => "no-early-dropping",
            DropPolicy::LastTask => "last-task-dropping",
            DropPolicy::PerTask => "per-task-dropping",
            DropPolicy::OpportunisticRerouting => "opportunistic-rerouting",
        }
    }
}

/// One group of identical model-variant instances requested by an allocation plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Which model variant to host.
    pub variant: VariantId,
    /// Maximum batch size the instances may form (the paper's `y(i,k)`).
    pub max_batch: BatchSize,
    /// Number of replicas (the paper's `x(i,k)`).
    pub count: usize,
}

/// A resource-allocation plan: the output of a controller's `plan` step, corresponding
/// to the paper's Resource Manager output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct AllocationPlan {
    /// Desired instances per variant. Variants not listed get zero instances.
    pub instances: Vec<InstanceSpec>,
    /// Per-variant latency budgets in milliseconds (execution + queueing at that task),
    /// used by the runtime drop policies.
    pub latency_budgets_ms: HashMap<VariantId, f64>,
    /// The drop policy the data plane should apply.
    pub drop_policy: DropPolicy,
}

impl AllocationPlan {
    /// Total number of workers the plan uses.
    pub fn total_workers(&self) -> usize {
        self.instances.iter().map(|i| i.count).sum()
    }

    /// The instances hosting a given task.
    pub fn instances_for_task(&self, task: usize) -> impl Iterator<Item = &InstanceSpec> {
        self.instances
            .iter()
            .filter(move |i| i.variant.task == task)
    }

    /// Aggregate throughput capacity (QPS) provisioned for a task, according to the
    /// profiled throughput of each instance.
    pub fn task_capacity_qps(&self, graph: &loki_pipeline::PipelineGraph, task: usize) -> f64 {
        self.instances_for_task(task)
            .map(|i| i.count as f64 * graph.variant(i.variant).throughput_qps(i.max_batch))
            .sum()
    }
}

/// A worker with leftover capacity, advertised in the backup tables used by
/// opportunistic rerouting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackupWorker {
    /// The worker that still has spare capacity.
    pub worker: WorkerId,
    /// Its profiled batch execution time in milliseconds (at its configured batch).
    pub exec_time_ms: f64,
    /// The single-model accuracy of the variant it hosts.
    pub accuracy: f64,
}

/// A routing plan: the output of a controller's `routing` step, corresponding to the
/// paper's Load Balancer output (per-worker routing tables plus backup tables).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct RoutingPlan {
    /// Distribution over first-task workers used by the frontend. Weights need not sum
    /// to one; they are normalized by the engine.
    pub frontend: Vec<(WorkerId, f64)>,
    /// Per-(upstream worker, downstream task) distribution over downstream workers.
    pub downstream: HashMap<(WorkerId, usize), Vec<(WorkerId, f64)>>,
    /// Fallback per-task distribution used when an upstream worker has no specific
    /// table (e.g. right after a reallocation).
    pub downstream_default: HashMap<usize, Vec<(WorkerId, f64)>>,
    /// Backup (leftover-capacity) workers per task, used by opportunistic rerouting.
    pub backup: HashMap<usize, Vec<BackupWorker>>,
}

/// A snapshot of one worker as seen by the control plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerView {
    /// The worker id.
    pub id: WorkerId,
    /// The variant currently hosted (None if the worker is powered down / unassigned).
    pub variant: Option<VariantId>,
    /// Configured maximum batch size.
    pub max_batch: BatchSize,
    /// Queue length at observation time.
    pub queue_len: usize,
    /// Whether the worker is still loading its model (swap in progress).
    pub swapping: bool,
}

/// Everything a controller may observe when making decisions. Controllers never see
/// the future trace — only measurements the real system could have collected.
#[derive(Debug, Clone)]
pub struct ObservedState<'a> {
    /// Current simulated time in seconds.
    pub now_s: f64,
    /// Total number of workers in the cluster (the paper's `S`).
    pub cluster_size: usize,
    /// Current worker assignments (borrowed from the engine's reusable
    /// snapshot buffer — controllers observe, they don't own).
    pub workers: &'a [WorkerView],
    /// Demand history observed at the frontend (root arrivals per second).
    pub demand: &'a DemandHistory,
    /// A hint about the initial demand, available only at the very first control tick
    /// (stands in for the warm-up knowledge a production deployment would have).
    pub initial_demand_hint: Option<f64>,
    /// Observed multiplicative factors aggregated from worker heartbeats:
    /// (variant, downstream task) -> average number of intermediate queries generated
    /// per processed query.
    pub observed_fanout: &'a HashMap<(VariantId, usize), f64>,
    /// Observed arrival rate (QPS) at each task over the last observation window,
    /// including intermediate queries. Pipeline-agnostic controllers (Proteus) use
    /// this instead of the pipeline structure.
    pub per_task_arrival_qps: &'a HashMap<usize, f64>,
}

/// A serving controller: the control plane plugged into the simulator.
///
/// The engine calls [`Controller::plan`] every `control_interval_s` (the Resource
/// Manager cadence; 10 s in the paper) and [`Controller::routing`] right after every
/// plan application as well as every `routing_interval_s` in between (the Load Balancer
/// cadence).
///
/// `Send` is a supertrait: in a sharded multi-pipeline run each lane's
/// controller moves to that lane's worker thread between rebalance epochs
/// (see `crate::shard`). Controllers are plain owned state, so this costs
/// implementations nothing.
pub trait Controller: Send {
    /// Name used in metrics and harness output.
    fn name(&self) -> &str;

    /// How often the resource-allocation step runs, in seconds.
    fn control_interval_s(&self) -> f64 {
        10.0
    }

    /// How often the routing refresh runs, in seconds.
    fn routing_interval_s(&self) -> f64 {
        1.0
    }

    /// Produce a new allocation plan, or `None` to keep the current one.
    fn plan(&mut self, observed: &ObservedState<'_>) -> Option<AllocationPlan>;

    /// Produce new routing tables for the current worker assignments in the
    /// engine's native compiled form (see [`crate::routing::CompiledPlan`]
    /// for the compile-once contract), or `None` to keep the current ones.
    /// Controllers that still build a legacy [`RoutingPlan`] can lower it
    /// with [`crate::routing::CompiledPlan::from_routing_plan`].
    fn routing(&mut self, observed: &ObservedState<'_>) -> Option<crate::routing::CompiledPlan>;
}

/// An in-flight query (either a client query at the first task or an intermediate
/// query at a downstream task).
///
/// Deliberately slim: this struct is copied on every hop through the data plane
/// (network FIFO → worker queue → in-flight batch → completion scratch), so it
/// carries only the fields the engine actually reads. The root request's packed
/// slab reference (`root`) links back to shared per-request state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Packed slab reference ([`crate::slab::SlotRef::pack`]) of the root
    /// client request this query descends from.
    pub root: u64,
    /// The pipeline task this query is destined for.
    pub task: usize,
    /// Product of the accuracies of the variants that have processed this query's
    /// lineage so far (becomes the path accuracy `Â(p)` once the query reaches a sink).
    pub path_accuracy: f64,
    /// Absolute deadline (root arrival + SLO).
    pub deadline_us: SimTime,
    /// When this query was enqueued at its current worker.
    pub enqueued_us: SimTime,
}

/// Global configuration of a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of workers (GPUs) in the cluster.
    pub cluster_size: usize,
    /// One-way network delay between any pair of servers, in milliseconds.
    /// This is the hop delay of the [`LinkDelayModel::Uniform`] model; the
    /// other models carry their own delays and ignore it.
    pub network_delay_ms: f64,
    /// Per-link delay model (uniform by default; see [`LinkDelayModel`]).
    pub link_delays: LinkDelayModel,
    /// Calendar-queue wheel geometry. `Auto` (the default) sizes the wheel
    /// from `link_delays`' hop range so sub-millisecond and WAN-scale hops
    /// both stay on the O(1) bucket path; `Fixed` pins an explicit bucket
    /// width and count. Geometry never changes event *ordering* (the queue's
    /// contract is geometry-independent), only its constant factors.
    pub calendar: crate::calendar::CalendarGeometry,
    /// Time to load a different model variant onto a worker, in milliseconds.
    pub model_swap_ms: f64,
    /// Interval between Resource-Manager invocations, in seconds.
    pub control_interval_s: f64,
    /// Interval between Load-Balancer refreshes, in seconds.
    pub routing_interval_s: f64,
    /// Metrics reporting interval, in seconds.
    pub metrics_interval_s: f64,
    /// Seed for all stochastic choices (routing sampling, fan-out rounding).
    pub seed: u64,
    /// Initial demand hint passed to the controller at the first control tick (QPS).
    pub initial_demand_hint: Option<f64>,
    /// How long the simulation keeps running after the last arrival to let in-flight
    /// queries drain, in seconds. Queries still unfinished afterwards count as dropped.
    pub drain_s: f64,
    /// Elastic-fleet configuration (see [`crate::elastic::ElasticSimConfig`]).
    /// `None` (the default) keeps the historical fixed fleet of `cluster_size`
    /// workers, bit-identical to the pre-elastic engine; `Some` makes the
    /// fleet a dynamic, heterogeneous, billed resource built from the catalog
    /// (and `cluster_size` is ignored in favour of the initial fleet).
    pub elastic: Option<crate::elastic::ElasticSimConfig>,
    /// Observability configuration: latency histograms (on by default),
    /// sampled query tracing, and per-phase self-profiling (both off by
    /// default). Observation-only — no setting here changes simulated
    /// results (see [`crate::trace`]).
    pub observe: crate::trace::ObserveConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            cluster_size: 20,
            network_delay_ms: 2.0,
            link_delays: LinkDelayModel::Uniform,
            calendar: crate::calendar::CalendarGeometry::Auto,
            model_swap_ms: 500.0,
            control_interval_s: 10.0,
            routing_interval_s: 1.0,
            metrics_interval_s: 1.0,
            seed: 42,
            initial_demand_hint: None,
            drain_s: 30.0,
            elastic: None,
            observe: crate::trace::ObserveConfig::default(),
        }
    }
}

/// Boxed controllers forward to their contents, so generic simulations (e.g.
/// [`crate::MultiSimulation`]) accept both concrete controller types and
/// `Box<dyn Controller>` trait objects.
impl<C: Controller + ?Sized> Controller for Box<C> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn control_interval_s(&self) -> f64 {
        (**self).control_interval_s()
    }

    fn routing_interval_s(&self) -> f64 {
        (**self).routing_interval_s()
    }

    fn plan(&mut self, observed: &ObservedState<'_>) -> Option<AllocationPlan> {
        (**self).plan(observed)
    }

    fn routing(&mut self, observed: &ObservedState<'_>) -> Option<crate::routing::CompiledPlan> {
        (**self).routing(observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_pipeline::zoo;

    #[test]
    fn time_conversions_roundtrip() {
        assert_eq!(secs_to_us(1.5), 1_500_000);
        assert_eq!(ms_to_us(2.5), 2_500);
        assert!((us_to_secs(secs_to_us(3.25)) - 3.25).abs() < 1e-9);
        assert!((us_to_ms(ms_to_us(0.75)) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn drop_policy_labels_are_unique() {
        let labels: Vec<_> = DropPolicy::all().iter().map(|p| p.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(DropPolicy::default(), DropPolicy::OpportunisticRerouting);
    }

    #[test]
    fn allocation_plan_aggregates() {
        let g = zoo::tiny_pipeline(100.0);
        let plan = AllocationPlan {
            instances: vec![
                InstanceSpec {
                    variant: VariantId::new(0, 1),
                    max_batch: 4,
                    count: 3,
                },
                InstanceSpec {
                    variant: VariantId::new(1, 0),
                    max_batch: 8,
                    count: 2,
                },
            ],
            latency_budgets_ms: HashMap::new(),
            drop_policy: DropPolicy::PerTask,
        };
        assert_eq!(plan.total_workers(), 5);
        assert_eq!(plan.instances_for_task(0).count(), 1);
        assert_eq!(plan.instances_for_task(1).count(), 1);
        let cap0 = plan.task_capacity_qps(&g, 0);
        let expected = 3.0 * g.variant(VariantId::new(0, 1)).throughput_qps(4);
        assert!((cap0 - expected).abs() < 1e-9);
    }

    #[test]
    fn link_delay_model_validates_and_compiles() {
        assert!(LinkDelayModel::Uniform.validate().is_ok());
        assert_eq!(LinkDelayModel::Uniform.max_hop_ms(2.0), 2.0);

        let per_edge = LinkDelayModel::PerEdge {
            frontend_ms: 1.0,
            default_ms: 2.0,
            edges: vec![((0, 1), 5.0)],
        };
        assert!(per_edge.validate().is_ok());
        assert_eq!(per_edge.max_hop_ms(2.0), 5.0);
        let compiled = per_edge.compile(2.0, 4, 2);
        assert_eq!(compiled.frontend_us(WorkerId(3)), 1_000);
        assert_eq!(compiled.hop_us(WorkerId(0), 0, WorkerId(1), 1), 5_000);
        assert_eq!(compiled.hop_us(WorkerId(1), 1, WorkerId(0), 0), 2_000);

        let per_class = LinkDelayModel::PerWorkerClass {
            classes: 2,
            delay_ms: vec![0.2, 5.0, 4.0, 0.3],
            frontend_ms: vec![1.0, 2.5],
        };
        assert!(per_class.validate().is_ok());
        assert_eq!(per_class.max_hop_ms(2.0), 5.0);
        let compiled = per_class.compile(2.0, 4, 2);
        // Workers are striped: 0 and 2 are class 0, 1 and 3 are class 1.
        assert_eq!(compiled.frontend_us(WorkerId(2)), 1_000);
        assert_eq!(compiled.frontend_us(WorkerId(3)), 2_500);
        assert_eq!(compiled.hop_us(WorkerId(0), 0, WorkerId(2), 1), 200);
        assert_eq!(compiled.hop_us(WorkerId(0), 0, WorkerId(1), 1), 5_000);
        assert_eq!(compiled.hop_us(WorkerId(1), 0, WorkerId(2), 1), 4_000);
        assert_eq!(compiled.hop_us(WorkerId(3), 0, WorkerId(1), 1), 300);

        // Malformed models are rejected.
        assert!(LinkDelayModel::PerWorkerClass {
            classes: 2,
            delay_ms: vec![1.0; 3],
            frontend_ms: vec![1.0; 2],
        }
        .validate()
        .is_err());
        assert!(LinkDelayModel::PerWorkerClass {
            classes: 0,
            delay_ms: vec![],
            frontend_ms: vec![],
        }
        .validate()
        .is_err());
        assert!(LinkDelayModel::PerEdge {
            frontend_ms: f64::NAN,
            default_ms: 1.0,
            edges: vec![],
        }
        .validate()
        .is_err());
    }

    #[test]
    fn hop_range_spans_every_hop_class() {
        assert_eq!(LinkDelayModel::Uniform.hop_range_ms(2.0), (2.0, 2.0));
        let per_edge = LinkDelayModel::PerEdge {
            frontend_ms: 1.0,
            default_ms: 2.0,
            edges: vec![((0, 1), 100.0), ((1, 0), 0.005)],
        };
        assert_eq!(per_edge.hop_range_ms(2.0), (0.005, 100.0));
        let per_class = LinkDelayModel::PerWorkerClass {
            classes: 2,
            delay_ms: vec![0.2, 5.0, 5.0, 0.2],
            frontend_ms: vec![1.0, 2.5],
        };
        assert_eq!(per_class.hop_range_ms(2.0), (0.2, 5.0));
    }

    #[test]
    #[should_panic(expected = "outside a 2-task pipeline")]
    fn per_edge_compile_rejects_out_of_range_edges() {
        // A typo'd edge must fail loudly, not silently fall back to the
        // default delay while the planner budgets with the listed one.
        LinkDelayModel::PerEdge {
            frontend_ms: 1.0,
            default_ms: 2.0,
            edges: vec![((2, 3), 50.0)],
        }
        .compile(2.0, 4, 2);
    }

    #[test]
    fn sim_config_default_matches_paper_setup() {
        let c = SimConfig::default();
        assert_eq!(c.cluster_size, 20);
        assert!((c.control_interval_s - 10.0).abs() < 1e-12);
        assert!(c.routing_interval_s <= c.control_interval_s);
    }
}
