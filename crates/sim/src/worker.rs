//! The worker (GPU) model: a FIFO queue, greedy batch formation, and profile-driven
//! processing times.

use crate::types::{Query, SimTime, WorkerId};
use loki_pipeline::{BatchSize, PipelineGraph, VariantId};
use std::collections::VecDeque;

/// The model-variant instance currently hosted on a worker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// The hosted variant.
    pub variant: VariantId,
    /// Maximum batch size the worker may form.
    pub max_batch: BatchSize,
}

/// A single worker (GPU) in the simulated cluster.
#[derive(Debug, Clone)]
pub struct Worker {
    /// This worker's id.
    pub id: WorkerId,
    /// Current assignment (None = powered down / unassigned).
    pub assignment: Option<Assignment>,
    /// Queue of queries waiting to be batched.
    queue: VecDeque<Query>,
    /// The batch currently being processed (empty if idle).
    in_flight: Vec<Query>,
    /// The variant that is processing the in-flight batch (it may differ from the
    /// current assignment if the worker was re-assigned mid-batch).
    pub in_flight_variant: Option<VariantId>,
    /// Time until which the worker is busy processing the in-flight batch.
    pub busy_until: SimTime,
    /// Time until which the worker is loading a new model (cannot process).
    pub swap_until: SimTime,
    /// Accumulated busy time (for utilization accounting).
    pub busy_time_us: u64,
    /// Number of queries this worker has processed.
    pub processed: u64,
}

impl Worker {
    /// Create an idle, unassigned worker.
    pub fn new(id: WorkerId) -> Self {
        Self {
            id,
            assignment: None,
            queue: VecDeque::new(),
            in_flight: Vec::new(),
            in_flight_variant: None,
            busy_until: 0,
            swap_until: 0,
            busy_time_us: 0,
            processed: 0,
        }
    }

    /// True if the worker hosts a variant.
    pub fn is_active(&self) -> bool {
        self.assignment.is_some()
    }

    /// True if the worker is currently processing a batch at time `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        !self.in_flight.is_empty() && self.busy_until > now
    }

    /// True if the worker is still loading a model at time `now`.
    pub fn is_swapping(&self, now: SimTime) -> bool {
        self.swap_until > now
    }

    /// Length of the waiting queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Push a query onto the waiting queue.
    pub fn enqueue(&mut self, q: Query) {
        self.queue.push_back(q);
    }

    /// Remove and return every queued query (used when a worker is re-assigned and its
    /// queue has to be re-routed elsewhere).
    pub fn drain_queue(&mut self) -> Vec<Query> {
        self.queue.drain(..).collect()
    }

    /// Assign a (possibly different) variant to this worker.
    ///
    /// Returns `true` if the model actually changed (which incurs the swap delay the
    /// caller is responsible for applying via [`Worker::begin_swap`]). Changing only
    /// the batch size is free.
    pub fn assign(&mut self, variant: VariantId, max_batch: BatchSize) -> bool {
        let changed = match self.assignment {
            Some(a) => a.variant != variant,
            None => true,
        };
        self.assignment = Some(Assignment { variant, max_batch });
        changed
    }

    /// Power the worker down (hardware scaling during off-peak periods).
    pub fn unassign(&mut self) {
        self.assignment = None;
    }

    /// Mark the worker as loading a model until `until`.
    pub fn begin_swap(&mut self, until: SimTime) {
        self.swap_until = until;
    }

    /// Try to start processing a batch at time `now`.
    ///
    /// Returns `Some((finish_time, batch_size))` if a batch was started; the engine is
    /// expected to schedule a batch-completion event at `finish_time`. Returns `None`
    /// if the worker is unassigned, busy, swapping, or has an empty queue.
    pub fn try_start_batch(&mut self, now: SimTime, graph: &PipelineGraph) -> Option<(SimTime, usize)> {
        if !self.in_flight.is_empty() || self.queue.is_empty() || self.is_swapping(now) {
            return None;
        }
        let assignment = self.assignment?;
        let take = (self.queue.len()).min(assignment.max_batch as usize);
        self.in_flight.extend(self.queue.drain(..take));
        self.in_flight_variant = Some(assignment.variant);
        let latency_ms = graph
            .variant(assignment.variant)
            .batch_latency_ms(take as BatchSize);
        let duration = crate::types::ms_to_us(latency_ms);
        self.busy_until = now + duration;
        self.busy_time_us += duration;
        self.processed += take as u64;
        Some((self.busy_until, take))
    }

    /// Finish the in-flight batch, returning its queries and the variant that
    /// processed them.
    pub fn finish_batch(&mut self) -> (Vec<Query>, Option<VariantId>) {
        let variant = self.in_flight_variant.take();
        (std::mem::take(&mut self.in_flight), variant)
    }

    /// Profiled execution time (ms) of one full batch at the configured batch size.
    pub fn profiled_exec_ms(&self, graph: &PipelineGraph) -> Option<f64> {
        self.assignment
            .map(|a| graph.variant(a.variant).batch_latency_ms(a.max_batch))
    }

    /// Profiled throughput (QPS) of this worker at its configured batch size.
    pub fn capacity_qps(&self, graph: &PipelineGraph) -> f64 {
        self.assignment
            .map(|a| graph.variant(a.variant).throughput_qps(a.max_batch))
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_pipeline::zoo;

    fn query(id: u64, task: usize) -> Query {
        Query {
            id,
            root: id,
            task,
            path_accuracy: 1.0,
            deadline_us: 1_000_000,
            released_us: 0,
            enqueued_us: 0,
            overrun_ms: 0.0,
        }
    }

    #[test]
    fn idle_unassigned_worker_does_not_start() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(0));
        w.enqueue(query(1, 0));
        assert!(w.try_start_batch(0, &g).is_none());
        assert!(!w.is_active());
    }

    #[test]
    fn batch_formation_respects_max_batch() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(0));
        w.assign(VariantId::new(0, 0), 4);
        for i in 0..10 {
            w.enqueue(query(i, 0));
        }
        let (finish, size) = w.try_start_batch(0, &g).unwrap();
        assert_eq!(size, 4);
        assert_eq!(w.queue_len(), 6);
        // a-small: alpha=2, beta=1 -> 2 + 4 = 6 ms
        assert_eq!(finish, crate::types::ms_to_us(6.0));
        // cannot start another batch while busy
        assert!(w.try_start_batch(1, &g).is_none());
        let (done, variant) = w.finish_batch();
        assert_eq!(done.len(), 4);
        assert_eq!(variant, Some(VariantId::new(0, 0)));
        // now it can start again with the remaining queries
        let (_, size2) = w.try_start_batch(finish, &g).unwrap();
        assert_eq!(size2, 4);
    }

    #[test]
    fn partial_batches_form_when_queue_is_short() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(1));
        w.assign(VariantId::new(0, 1), 8);
        w.enqueue(query(1, 0));
        w.enqueue(query(2, 0));
        let (_, size) = w.try_start_batch(100, &g).unwrap();
        assert_eq!(size, 2);
        assert_eq!(w.queue_len(), 0);
    }

    #[test]
    fn swap_blocks_processing_and_reassignment_detects_change() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(2));
        let changed = w.assign(VariantId::new(0, 0), 2);
        assert!(changed);
        // same variant, different batch: no swap needed
        assert!(!w.assign(VariantId::new(0, 0), 4));
        // different variant: swap needed
        assert!(w.assign(VariantId::new(0, 1), 4));
        w.begin_swap(5_000);
        w.enqueue(query(1, 0));
        assert!(w.try_start_batch(1_000, &g).is_none());
        assert!(w.is_swapping(1_000));
        assert!(!w.is_swapping(5_000));
        assert!(w.try_start_batch(5_000, &g).is_some());
    }

    #[test]
    fn drain_queue_and_capacity() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(3));
        assert_eq!(w.capacity_qps(&g), 0.0);
        w.assign(VariantId::new(1, 1), 8);
        w.enqueue(query(1, 1));
        w.enqueue(query(2, 1));
        let drained = w.drain_queue();
        assert_eq!(drained.len(), 2);
        assert_eq!(w.queue_len(), 0);
        let expected = g.variant(VariantId::new(1, 1)).throughput_qps(8);
        assert!((w.capacity_qps(&g) - expected).abs() < 1e-9);
        assert!(w.profiled_exec_ms(&g).is_some());
        w.unassign();
        assert!(!w.is_active());
    }

    #[test]
    fn busy_time_accumulates() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(4));
        w.assign(VariantId::new(0, 0), 1);
        w.enqueue(query(1, 0));
        let (t1, _) = w.try_start_batch(0, &g).unwrap();
        w.finish_batch();
        w.enqueue(query(2, 0));
        let (t2, _) = w.try_start_batch(t1, &g).unwrap();
        w.finish_batch();
        assert_eq!(w.busy_time_us, t2 - 0);
        assert_eq!(w.processed, 2);
    }
}
