//! The worker (GPU) model: a FIFO queue, greedy batch formation, and profile-driven
//! processing times.

use crate::types::{Query, SimTime, WorkerId};
use loki_pipeline::{BatchSize, LatencyProfile, PipelineGraph, VariantId};
use std::collections::VecDeque;

/// The model-variant instance currently hosted on a worker.
///
/// Carries a copy of the variant's latency profile so the hot batching path
/// (`try_start_batch`, the drop-policy checks) never walks the pipeline graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Assignment {
    /// The hosted variant.
    pub variant: VariantId,
    /// Maximum batch size the worker may form.
    pub max_batch: BatchSize,
    /// The variant's profiled batch-latency model, cached at assignment time.
    pub latency: LatencyProfile,
}

/// Lifecycle state of a worker in an elastic fleet. Fixed-fleet workers are
/// `Warm` for the whole run, which reproduces the historical engine exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lifecycle {
    /// Requested from the provider, still booting: owns no lane, hosts no
    /// model, is not billed.
    Provisioning,
    /// Fully operational (the only state that accepts new dispatches).
    #[default]
    Warm,
    /// Scheduled for removal: finishes its in-flight batch but accepts no new
    /// dispatches (its queue was re-homed when draining began).
    Draining,
    /// Removed from the fleet; its slot is kept so `WorkerId`s stay stable,
    /// but the worker never serves (or bills) again.
    Retired,
}

/// A single worker (GPU) in the simulated cluster.
#[derive(Debug, Clone)]
pub struct Worker {
    /// This worker's id.
    pub id: WorkerId,
    /// Current assignment (None = powered down / unassigned).
    pub assignment: Option<Assignment>,
    /// Queue of queries waiting to be batched.
    queue: VecDeque<Query>,
    /// The batch currently being processed (empty if idle).
    in_flight: Vec<Query>,
    /// The variant that is processing the in-flight batch (it may differ from the
    /// current assignment if the worker was re-assigned mid-batch).
    pub in_flight_variant: Option<VariantId>,
    /// Time until which the worker is busy processing the in-flight batch.
    pub busy_until: SimTime,
    /// When the in-flight batch started executing (meaningful only while
    /// [`Worker::has_in_flight`]); lets the tracer split a query's time at a
    /// worker into queue wait vs. execution without storing per-query state.
    pub batch_started_us: SimTime,
    /// Time until which the worker is loading a new model (cannot process).
    pub swap_until: SimTime,
    /// Accumulated busy time (for utilization accounting).
    pub busy_time_us: u64,
    /// Number of queries this worker has processed.
    pub processed: u64,
    /// Elastic lifecycle state (`Warm` for fixed-fleet workers).
    pub lifecycle: Lifecycle,
    /// Catalog class index (0 for fixed-fleet workers).
    pub class: u32,
    /// Multiplier on hosted variants' latency profiles (the worker's
    /// class-relative speed; 1.0 = the profiled reference GPU).
    pub perf_scale: f64,
    /// When billing started (boot completion; 0 for the initial warm fleet).
    pub billed_from_us: SimTime,
}

impl Worker {
    /// Create an idle, unassigned worker.
    pub fn new(id: WorkerId) -> Self {
        Self {
            id,
            assignment: None,
            queue: VecDeque::new(),
            in_flight: Vec::new(),
            in_flight_variant: None,
            busy_until: 0,
            batch_started_us: 0,
            swap_until: 0,
            busy_time_us: 0,
            processed: 0,
            lifecycle: Lifecycle::Warm,
            class: 0,
            perf_scale: 1.0,
            billed_from_us: 0,
        }
    }

    /// Create a still-booting worker of a catalog class.
    pub fn provisioning(id: WorkerId, class: u32, perf_scale: f64) -> Self {
        Self {
            lifecycle: Lifecycle::Provisioning,
            class,
            perf_scale,
            ..Self::new(id)
        }
    }

    /// True when the worker may receive new dispatches (warm — not booting,
    /// draining, or retired). Every routing path in the engine filters on
    /// this, which is what guarantees a draining worker never receives a new
    /// dispatch.
    #[inline]
    pub fn accepts_dispatches(&self) -> bool {
        self.lifecycle == Lifecycle::Warm
    }

    /// Begin draining: the worker accepts no new dispatches from now on. The
    /// caller is responsible for re-homing the queue (via
    /// [`Worker::drain_queue`]) and for retiring the worker once its in-flight
    /// batch completes (immediately when [`Worker::has_in_flight`] is false).
    pub fn begin_drain(&mut self) {
        debug_assert_eq!(self.lifecycle, Lifecycle::Warm, "only warm workers drain");
        self.lifecycle = Lifecycle::Draining;
    }

    /// True while a batch is executing on the worker.
    pub fn has_in_flight(&self) -> bool {
        !self.in_flight.is_empty()
    }

    /// True if the worker hosts a variant.
    pub fn is_active(&self) -> bool {
        self.assignment.is_some()
    }

    /// True if the worker is currently processing a batch at time `now`.
    pub fn is_busy(&self, now: SimTime) -> bool {
        !self.in_flight.is_empty() && self.busy_until > now
    }

    /// True if the worker is still loading a model at time `now`.
    pub fn is_swapping(&self, now: SimTime) -> bool {
        self.swap_until > now
    }

    /// Length of the waiting queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Push a query onto the waiting queue.
    pub fn enqueue(&mut self, q: Query) {
        self.queue.push_back(q);
    }

    /// Push a query at the *head* of the waiting queue. Used when re-homing
    /// queries lost to a spot revocation: they were already at the front of
    /// the revoked worker's service order, so they keep their place on the
    /// survivor rather than re-queueing behind newer arrivals.
    pub fn enqueue_front(&mut self, q: Query) {
        self.queue.push_front(q);
    }

    /// Deliver a query and immediately try to start a batch — the common case
    /// in an underloaded cluster is an idle worker with an empty queue, where
    /// the query can go straight into execution as a batch of one without the
    /// round trip through the waiting queue.
    #[inline]
    pub fn deliver_and_try_start(&mut self, q: Query, now: SimTime) -> Option<(SimTime, usize)> {
        debug_assert!(
            self.accepts_dispatches(),
            "dispatch to a non-warm worker {}",
            self.id
        );
        if self.in_flight.is_empty() && self.queue.is_empty() && !self.is_swapping(now) {
            if let Some(assignment) = self.assignment.as_ref() {
                let variant = assignment.variant;
                let latency_ms = assignment.latency.batch_latency_ms(1);
                self.in_flight.push(q);
                self.in_flight_variant = Some(variant);
                let duration = crate::types::ms_to_us(latency_ms);
                self.busy_until = now + duration;
                self.batch_started_us = now;
                self.busy_time_us += duration;
                self.processed += 1;
                return Some((self.busy_until, 1));
            }
        }
        self.queue.push_back(q);
        self.try_start_batch(now)
    }

    /// Remove and return every queued query (used when a worker is re-assigned and its
    /// queue has to be re-routed elsewhere).
    pub fn drain_queue(&mut self) -> Vec<Query> {
        self.queue.drain(..).collect()
    }

    /// Assign a (possibly different) variant to this worker.
    ///
    /// Returns `true` if the model actually changed (which incurs the swap delay the
    /// caller is responsible for applying via [`Worker::begin_swap`]). Changing only
    /// the batch size is free.
    pub fn assign(
        &mut self,
        variant: VariantId,
        max_batch: BatchSize,
        graph: &PipelineGraph,
    ) -> bool {
        let changed = match self.assignment {
            Some(a) => a.variant != variant,
            None => true,
        };
        // Cache the latency profile scaled by the worker's class speed, so the
        // hot batching path pays the heterogeneity exactly once, here.
        let reference = graph.variant(variant).latency;
        let latency = if self.perf_scale == 1.0 {
            reference
        } else {
            loki_pipeline::LatencyProfile::new(
                reference.alpha_ms * self.perf_scale,
                reference.beta_ms * self.perf_scale,
            )
        };
        self.assignment = Some(Assignment {
            variant,
            max_batch,
            latency,
        });
        changed
    }

    /// Power the worker down (hardware scaling during off-peak periods).
    pub fn unassign(&mut self) {
        self.assignment = None;
    }

    /// Mark the worker as loading a model until `until`.
    pub fn begin_swap(&mut self, until: SimTime) {
        self.swap_until = until;
    }

    /// Try to start processing a batch at time `now`.
    ///
    /// Returns `Some((finish_time, batch_size))` if a batch was started; the engine is
    /// expected to schedule a batch-completion event at `finish_time`. Returns `None`
    /// if the worker is unassigned, busy, swapping, or has an empty queue.
    pub fn try_start_batch(&mut self, now: SimTime) -> Option<(SimTime, usize)> {
        if !self.in_flight.is_empty()
            || self.queue.is_empty()
            || self.is_swapping(now)
            || !self.accepts_dispatches()
        {
            return None;
        }
        let assignment = self.assignment.as_ref()?;
        let take = (self.queue.len()).min(assignment.max_batch as usize);
        let variant = assignment.variant;
        let latency_ms = assignment.latency.batch_latency_ms(take as BatchSize);
        // Manual pop loop: cheaper than a `drain` iterator for the tiny batch
        // sizes that dominate here.
        self.in_flight.reserve(take);
        for _ in 0..take {
            let q = self.queue.pop_front().expect("take <= queue len");
            self.in_flight.push(q);
        }
        self.in_flight_variant = Some(variant);
        let duration = crate::types::ms_to_us(latency_ms);
        self.busy_until = now + duration;
        self.batch_started_us = now;
        self.busy_time_us += duration;
        self.processed += take as u64;
        Some((self.busy_until, take))
    }

    /// Finish the in-flight batch, moving its queries into `out` (which is
    /// cleared first) and returning the variant that processed them. The swap
    /// lets the engine reuse one scratch buffer for every batch instead of
    /// allocating a fresh `Vec` per completion.
    pub fn finish_batch_into(&mut self, out: &mut Vec<Query>) -> Option<VariantId> {
        out.clear();
        std::mem::swap(&mut self.in_flight, out);
        self.in_flight_variant.take()
    }

    /// Abort the in-flight batch at `now`, moving its queries into `out`
    /// (cleared first). The inverse of [`Worker::finish_batch_into`] for a
    /// batch that will never complete: busy-time credited at batch start is
    /// refunded for the unexecuted remainder, the processed count is rolled
    /// back, and the worker is left idle. Used when a revocation deadline
    /// expires with the batch still running.
    pub fn abort_batch_into(&mut self, out: &mut Vec<Query>, now: SimTime) {
        out.clear();
        std::mem::swap(&mut self.in_flight, out);
        self.busy_time_us = self
            .busy_time_us
            .saturating_sub(self.busy_until.saturating_sub(now));
        self.busy_until = now;
        self.processed = self.processed.saturating_sub(out.len() as u64);
        self.in_flight_variant = None;
    }

    /// Profiled execution time (ms) of one full batch at the configured batch size.
    pub fn profiled_exec_ms(&self) -> Option<f64> {
        self.assignment
            .map(|a| a.latency.batch_latency_ms(a.max_batch))
    }

    /// Profiled throughput (QPS) of this worker at its configured batch size.
    pub fn capacity_qps(&self) -> f64 {
        self.assignment
            .map(|a| a.latency.throughput_qps(a.max_batch))
            .unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use loki_pipeline::zoo;

    fn query(id: u64, task: usize) -> Query {
        Query {
            root: id,
            task,
            path_accuracy: 1.0,
            deadline_us: 1_000_000,
            enqueued_us: 0,
        }
    }

    #[test]
    fn idle_unassigned_worker_does_not_start() {
        let _g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(0));
        w.enqueue(query(1, 0));
        assert!(w.try_start_batch(0).is_none());
        assert!(!w.is_active());
    }

    #[test]
    fn batch_formation_respects_max_batch() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(0));
        w.assign(VariantId::new(0, 0), 4, &g);
        for i in 0..10 {
            w.enqueue(query(i, 0));
        }
        let (finish, size) = w.try_start_batch(0).unwrap();
        assert_eq!(size, 4);
        assert_eq!(w.queue_len(), 6);
        // a-small: alpha=2, beta=1 -> 2 + 4 = 6 ms
        assert_eq!(finish, crate::types::ms_to_us(6.0));
        // cannot start another batch while busy
        assert!(w.try_start_batch(1).is_none());
        let mut done = Vec::new();
        let variant = w.finish_batch_into(&mut done);
        assert_eq!(done.len(), 4);
        assert_eq!(variant, Some(VariantId::new(0, 0)));
        // now it can start again with the remaining queries
        let (_, size2) = w.try_start_batch(finish).unwrap();
        assert_eq!(size2, 4);
    }

    #[test]
    fn partial_batches_form_when_queue_is_short() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(1));
        w.assign(VariantId::new(0, 1), 8, &g);
        w.enqueue(query(1, 0));
        w.enqueue(query(2, 0));
        let (_, size) = w.try_start_batch(100).unwrap();
        assert_eq!(size, 2);
        assert_eq!(w.queue_len(), 0);
    }

    #[test]
    fn swap_blocks_processing_and_reassignment_detects_change() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(2));
        let changed = w.assign(VariantId::new(0, 0), 2, &g);
        assert!(changed);
        // same variant, different batch: no swap needed
        assert!(!w.assign(VariantId::new(0, 0), 4, &g));
        // different variant: swap needed
        assert!(w.assign(VariantId::new(0, 1), 4, &g));
        w.begin_swap(5_000);
        w.enqueue(query(1, 0));
        assert!(w.try_start_batch(1_000).is_none());
        assert!(w.is_swapping(1_000));
        assert!(!w.is_swapping(5_000));
        assert!(w.try_start_batch(5_000).is_some());
    }

    #[test]
    fn drain_queue_and_capacity() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(3));
        assert_eq!(w.capacity_qps(), 0.0);
        w.assign(VariantId::new(1, 1), 8, &g);
        w.enqueue(query(1, 1));
        w.enqueue(query(2, 1));
        let drained = w.drain_queue();
        assert_eq!(drained.len(), 2);
        assert_eq!(w.queue_len(), 0);
        let expected = g.variant(VariantId::new(1, 1)).throughput_qps(8);
        assert!((w.capacity_qps() - expected).abs() < 1e-9);
        assert!(w.profiled_exec_ms().is_some());
        w.unassign();
        assert!(!w.is_active());
    }

    #[test]
    fn draining_worker_finishes_in_flight_but_starts_nothing_new() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(5));
        w.assign(VariantId::new(0, 0), 4, &g);
        w.enqueue(query(1, 0));
        let (finish, _) = w.try_start_batch(0).unwrap();
        // Draining mid-batch: the in-flight batch still completes...
        w.begin_drain();
        assert!(!w.accepts_dispatches());
        assert!(w.has_in_flight());
        let mut done = Vec::new();
        assert_eq!(w.finish_batch_into(&mut done), Some(VariantId::new(0, 0)));
        assert_eq!(done.len(), 1);
        // ...but nothing new ever starts, even with queued work.
        w.enqueue(query(2, 0));
        assert!(w.try_start_batch(finish).is_none());
        w.lifecycle = Lifecycle::Retired;
        assert!(w.try_start_batch(finish).is_none());
    }

    #[test]
    fn perf_scale_stretches_the_cached_latency_profile() {
        let g = zoo::tiny_pipeline(100.0);
        let mut reference = Worker::new(WorkerId(6));
        reference.assign(VariantId::new(0, 0), 4, &g);
        let mut slow = Worker::provisioning(WorkerId(7), 1, 1.5);
        assert_eq!(slow.lifecycle, Lifecycle::Provisioning);
        slow.lifecycle = Lifecycle::Warm;
        slow.assign(VariantId::new(0, 0), 4, &g);
        let base = reference.profiled_exec_ms().unwrap();
        let scaled = slow.profiled_exec_ms().unwrap();
        assert!((scaled - base * 1.5).abs() < 1e-9, "{scaled} vs {base}");
        // Throughput drops by the same factor.
        assert!((slow.capacity_qps() - reference.capacity_qps() / 1.5).abs() < 1e-9);
    }

    #[test]
    fn abort_batch_refunds_busy_time_and_processed_count() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(8));
        w.assign(VariantId::new(0, 0), 4, &g);
        for i in 0..3 {
            w.enqueue(query(i, 0));
        }
        let (finish, size) = w.try_start_batch(0).unwrap();
        assert_eq!(size, 3);
        assert_eq!(w.busy_time_us, finish);
        // Revocation deadline hits 1 ms into the batch: the batch is lost,
        // only the elapsed 1 ms stays credited as busy time.
        let now = crate::types::ms_to_us(1.0);
        let mut lost = Vec::new();
        w.abort_batch_into(&mut lost, now);
        assert_eq!(lost.len(), 3);
        assert!(!w.has_in_flight());
        assert_eq!(w.in_flight_variant, None);
        assert_eq!(w.busy_until, now);
        assert_eq!(w.busy_time_us, now);
        assert_eq!(w.processed, 0);
    }

    #[test]
    fn enqueue_front_preserves_service_order() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(9));
        w.assign(VariantId::new(0, 0), 1, &g);
        w.enqueue(query(10, 0));
        w.enqueue_front(query(5, 0));
        let (_, size) = w.try_start_batch(0).unwrap();
        assert_eq!(size, 1);
        let mut done = Vec::new();
        w.finish_batch_into(&mut done);
        // The front-enqueued query is served before the earlier arrival.
        assert_eq!(done[0].root, 5);
        assert_eq!(w.queue_len(), 1);
    }

    #[test]
    fn busy_time_accumulates() {
        let g = zoo::tiny_pipeline(100.0);
        let mut w = Worker::new(WorkerId(4));
        w.assign(VariantId::new(0, 0), 1, &g);
        w.enqueue(query(1, 0));
        let mut scratch = Vec::new();
        let (t1, _) = w.try_start_batch(0).unwrap();
        w.finish_batch_into(&mut scratch);
        w.enqueue(query(2, 0));
        let (t2, _) = w.try_start_batch(t1).unwrap();
        w.finish_batch_into(&mut scratch);
        assert_eq!(w.busy_time_us, t2);
        assert_eq!(w.processed, 2);
    }
}
