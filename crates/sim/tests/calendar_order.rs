//! Property-style equivalence tests: the calendar queue must dequeue any event
//! stream in exactly the order `BinaryHeap<Reverse<(time, seq)>>` would,
//! including same-time `seq` tie-breaks. Cases are generated from seeded RNG
//! loops (the vendored proptest stub offers no interleaving control), so every
//! failure is reproducible from its printed seed.

use loki_sim::calendar::CalendarQueue;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Drive a calendar queue and a reference heap through the same randomized
/// interleaving of pushes and pops, mimicking engine usage: every push is
/// scheduled at or after the time of the last popped event (`now + delay`,
/// `delay >= 0`), with `delay` drawn from `0..=max_delay_us`.
fn exercise(seed: u64, ops: usize, max_delay_us: u64, shift: u32, buckets: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut calendar: CalendarQueue<u64> = CalendarQueue::new(shift, buckets);
    let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = 0u64;
    let mut pops = 0usize;

    let pop_both = |calendar: &mut CalendarQueue<u64>,
                    heap: &mut BinaryHeap<Reverse<(u64, u64)>>,
                    now: &mut u64,
                    pops: &mut usize| {
        let expected = heap.pop().map(|Reverse(e)| e);
        assert_eq!(
            calendar.peek(),
            expected,
            "peek diverged from heap (seed {seed}, pop #{pops})"
        );
        let got = calendar.pop().map(|(t, s, item)| {
            assert_eq!(s, item, "payload must ride with its event");
            (t, s)
        });
        assert_eq!(got, expected, "pop diverged from heap (seed {seed})");
        if let Some((t, _)) = got {
            assert!(*now <= t, "time went backwards (seed {seed})");
            *now = t;
            *pops += 1;
        }
    };

    for _ in 0..ops {
        // Bias towards pushes so the queues stay populated across rotations.
        if rng.gen_range(0..3u32) < 2 || heap.is_empty() {
            // Small delay ranges force same-time collisions (seq tie-breaks);
            // large ones force overflow and wheel rotations.
            let time = now + rng.gen_range(0..max_delay_us + 1);
            seq += 1;
            calendar.push(time, seq, seq);
            heap.push(Reverse((time, seq)));
        } else {
            pop_both(&mut calendar, &mut heap, &mut now, &mut pops);
        }
        assert_eq!(calendar.len(), heap.len());
    }
    while !heap.is_empty() {
        pop_both(&mut calendar, &mut heap, &mut now, &mut pops);
    }
    assert!(calendar.is_empty());
    assert_eq!(calendar.pop(), None);
    assert!(pops > 0);
}

#[test]
fn matches_heap_on_engine_like_delays() {
    // Engine-shaped parameters: 256 us buckets, delays up to ~10 ms.
    for seed in 0..32 {
        exercise(seed, 4_000, 10_000, 8, 1024);
    }
}

#[test]
fn matches_heap_with_heavy_ties() {
    // Delay range 0..=3 us on 16 us buckets: nearly every event collides in
    // time and the order is decided by seq alone.
    for seed in 100..116 {
        exercise(seed, 2_000, 3, 4, 8);
    }
}

#[test]
fn matches_heap_across_overflow_and_rotations() {
    // A tiny wheel (8 buckets x 16 us = 128 us horizon) with delays up to
    // 100x the horizon: most pushes overflow and every rotation redistributes.
    for seed in 200..216 {
        exercise(seed, 2_000, 12_800, 4, 8);
    }
}

#[test]
fn matches_heap_on_default_geometry() {
    // The engine's default wheel, including far-future "control tick" delays
    // past the ~2 s horizon.
    for seed in 300..308 {
        exercise(seed, 3_000, 12_000_000, 8, 8192);
    }
}

/// The ordering hazard the calendar queue fixes: with per-link delays, a
/// delivery pushed later can be due earlier. A FIFO (the old delivery queue)
/// would hand events out in push order; the calendar queue must reorder them.
#[test]
fn reorders_deliveries_a_fifo_could_not() {
    let mut q: CalendarQueue<&str> = CalendarQueue::default();
    // Pushed in seq order, but the cross-rack hop (5 ms) is due after the
    // PCIe hop (200 us) that was scheduled later.
    q.push(5_000, 1, "cross-rack");
    q.push(200, 2, "pcie");
    q.push(5_000, 3, "cross-rack-2");
    let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, _, i)| i)).collect();
    assert_eq!(order, vec!["pcie", "cross-rack", "cross-rack-2"]);
}
