//! Elasticity invariants of the engine:
//!
//! * provisioned capacity is never billed before boot completes (billing spans
//!   are exact, pinned to the microsecond);
//! * a draining worker finishes its in-flight work but never receives a new
//!   dispatch — with half the fleet drained mid-run, every request is still
//!   accounted for and the survivors serve the rest;
//! * same-seed elastic runs are deterministic, and scaling actions actually
//!   change the execution relative to the static fleet;
//! * a fixed-fleet run (`elastic: None`) is bit-identical to the same config
//!   with an elastic single-class fleet of the same size and a no-op policy —
//!   the billing layer observes, it never perturbs.

use loki_pipeline::{zoo, VariantId};
use loki_sim::{
    AllocationPlan, CompiledPlan, Controller, DropPolicy, ElasticAction, ElasticObservation,
    ElasticPolicy, ElasticSimConfig, InstanceSpec, ObservedState, RoutingPlan, RunSummary,
    SimConfig, Simulation, StaticFleet, WorkerClass, WorkerClassCatalog,
};
use loki_workload::{generate_arrivals, generators, ArrivalProcess};
use std::collections::HashMap;

/// A fixed controller (static allocation, uniform routing) so the tests
/// exercise the fleet mechanics without control-plane intelligence.
struct StaticController {
    plan: AllocationPlan,
}

impl StaticController {
    fn tiny(replicas_a: usize, replicas_b: usize) -> Self {
        Self {
            plan: AllocationPlan {
                instances: vec![
                    InstanceSpec {
                        variant: VariantId::new(0, 1),
                        max_batch: 4,
                        count: replicas_a,
                    },
                    InstanceSpec {
                        variant: VariantId::new(1, 1),
                        max_batch: 4,
                        count: replicas_b,
                    },
                ],
                latency_budgets_ms: HashMap::new(),
                drop_policy: DropPolicy::NoEarlyDropping,
            },
        }
    }
}

impl Controller for StaticController {
    fn name(&self) -> &str {
        "static"
    }

    fn control_interval_s(&self) -> f64 {
        5.0
    }

    fn plan(&mut self, observed: &ObservedState<'_>) -> Option<AllocationPlan> {
        // Re-plan every tick against the observed capacity: replica counts are
        // clamped by the engine, so a shrunken fleet keeps a valid plan.
        let _ = observed;
        Some(self.plan.clone())
    }

    fn routing(&mut self, observed: &ObservedState<'_>) -> Option<CompiledPlan> {
        let mut plan = RoutingPlan::default();
        let mut num_tasks = 0;
        for w in observed.workers {
            if let Some(v) = w.variant {
                if v.task == 0 {
                    plan.frontend.push((w.id, 1.0));
                }
                plan.downstream_default
                    .entry(v.task)
                    .or_default()
                    .push((w.id, 1.0));
                num_tasks = num_tasks.max(v.task + 1);
            }
        }
        Some(CompiledPlan::from_routing_plan(&plan, num_tasks))
    }
}

/// A policy that replays a fixed script of `(tick_time_s, actions)` entries.
struct ScriptedPolicy {
    script: Vec<(f64, Vec<ElasticAction>)>,
}

impl ElasticPolicy for ScriptedPolicy {
    fn name(&self) -> &str {
        "scripted"
    }

    fn decide(&mut self, observation: &ElasticObservation<'_>) -> Vec<ElasticAction> {
        let mut out = Vec::new();
        self.script.retain(|(when, actions)| {
            if *when <= observation.now_s {
                out.extend(actions.iter().copied());
                false
            } else {
                true
            }
        });
        out
    }
}

fn catalog(boot_delay_s: f64) -> WorkerClassCatalog {
    WorkerClassCatalog::single(WorkerClass {
        name: "gpu".to_string(),
        latency_scale: 1.0,
        memory_gb: 40.0,
        price_per_hour: 3.6, // 0.001 $/s: dollars are easy to eyeball
        boot_delay_s,
        spot: false,
    })
}

fn elastic_config(initial: usize, max_fleet: usize, boot_delay_s: f64) -> ElasticSimConfig {
    ElasticSimConfig {
        catalog: catalog(boot_delay_s),
        initial: vec![(0, initial)],
        max_fleet,
        decide_interval_s: 10.0,
        market: None,
    }
}

fn base_config(seed: u64) -> SimConfig {
    SimConfig {
        cluster_size: 4,
        network_delay_ms: 1.0,
        model_swap_ms: 0.0,
        control_interval_s: 5.0,
        metrics_interval_s: 1.0,
        seed,
        initial_demand_hint: Some(40.0),
        drain_s: 10.0,
        ..SimConfig::default()
    }
}

#[test]
fn billing_starts_at_boot_not_at_provisioning() {
    // 20 s of arrivals + 10 s drain = a 30 s run. Two initial workers billed
    // for the whole run; one worker provisioned at the t=10 s tick with a 5 s
    // boot is billed from t=15 s only: 2*30 + 15 = 75 GPU-seconds exactly.
    let graph = zoo::tiny_pipeline(200.0);
    let trace = generators::constant(20, 40.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Uniform, 3);
    let mut config = base_config(7);
    config.elastic = Some(elastic_config(2, 8, 5.0));
    let mut policy = ScriptedPolicy {
        script: vec![(10.0, vec![ElasticAction::Provision { class: 0, count: 1 }])],
    };
    let mut sim = Simulation::new(&graph, config, StaticController::tiny(1, 1));
    let result = sim.run_elastic(&arrivals, &mut policy);
    let cost = result.cost.expect("elastic runs report cost");
    // The run ends at last arrival + drain; the provisioned worker is billed
    // from its boot completion at t=15 s, not from the t=10 s request.
    let end_s = arrivals.last().unwrap() + 10.0;
    let expected = 2.0 * end_s + (end_s - 15.0);
    assert!(
        (cost.total_gpu_seconds - expected).abs() < 1e-3,
        "expected {expected} GPU-seconds (no billing before boot), got {}",
        cost.total_gpu_seconds
    );
    assert!((cost.total_dollars - expected * 0.001).abs() < 1e-6);
    assert_eq!(cost.per_class.len(), 1);
    assert_eq!(cost.per_class[0].provisioned, 1);
    assert_eq!(cost.per_class[0].retired, 0);
    assert_eq!(cost.peak_fleet, 3);
    assert!(cost.served_queries > 0);
    assert!(cost.cost_per_1k_queries > 0.0);
}

#[test]
fn draining_workers_finish_but_never_take_new_work() {
    // Four workers serve comfortably; at t=10 s half the fleet drains. Every
    // request must still be accounted for (conservation), the run must stay
    // healthy on the surviving half, and the retired workers' billing stops
    // at retirement (well before the end of the run).
    let graph = zoo::tiny_pipeline(200.0);
    let trace = generators::constant(30, 40.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 5);
    let mut config = base_config(11);
    config.elastic = Some(elastic_config(4, 8, 5.0));
    let mut policy = ScriptedPolicy {
        script: vec![(10.0, vec![ElasticAction::Drain { class: 0, count: 2 }])],
    };
    let mut sim = Simulation::new(&graph, config, StaticController::tiny(2, 2));
    let result = sim.run_elastic(&arrivals, &mut policy);
    let s = &result.summary;
    assert_eq!(
        s.total_on_time + s.total_late + s.total_dropped,
        s.total_arrivals,
        "drains must not lose requests"
    );
    assert!(
        s.total_on_time as f64 / s.total_arrivals as f64 > 0.9,
        "survivors should keep serving: {s:?}"
    );
    let cost = result.cost.expect("cost");
    assert_eq!(cost.per_class[0].retired, 2);
    // Two survivors billed to the end of the run, two drained at ~10 s
    // (in-flight batches add at most milliseconds past the drain request).
    let end_s = arrivals.last().unwrap() + 10.0;
    let expected = 2.0 * end_s + 2.0 * 10.0;
    assert!(
        cost.total_gpu_seconds >= expected && cost.total_gpu_seconds < expected + 1.0,
        "billing must stop at retirement: {} vs {expected}",
        cost.total_gpu_seconds
    );
}

#[test]
fn same_seed_elastic_runs_are_deterministic_and_scaling_changes_execution() {
    let graph = zoo::tiny_pipeline(150.0);
    // The ramp overloads the 2-worker fleet (one worker per task saturates
    // well under 400 QPS on the tiny pipeline), so extra capacity shows.
    let trace = generators::ramp(40, 50.0, 400.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 9);
    let run = |script: Vec<(f64, Vec<ElasticAction>)>| -> RunSummary {
        let mut config = base_config(13);
        config.elastic = Some(elastic_config(2, 6, 3.0));
        let mut policy = ScriptedPolicy { script };
        let mut sim = Simulation::new(&graph, config, StaticController::tiny(2, 2));
        sim.run_elastic(&arrivals, &mut policy).summary
    };
    let grow = || vec![(10.0, vec![ElasticAction::Provision { class: 0, count: 2 }])];
    let a = run(grow());
    let b = run(grow());
    assert_eq!(a, b, "same-seed elastic runs must be identical");
    let static_fleet = run(vec![]);
    assert_ne!(
        (a.events_processed, a.total_on_time),
        (static_fleet.events_processed, static_fleet.total_on_time),
        "provisioned capacity must change the execution"
    );
    // The ramp overloads two workers; the grown fleet serves strictly more.
    assert!(a.total_on_time > static_fleet.total_on_time);
}

#[test]
fn noop_policy_on_an_elastic_fleet_matches_the_fixed_fleet_run() {
    // Same seed, same 4 workers: the only difference is the billing layer and
    // a reference-class catalog. The execution must be bit-identical; only
    // the cost summary is new.
    let graph = zoo::tiny_pipeline(200.0);
    let trace = generators::constant(20, 40.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Uniform, 4);
    let fixed = {
        let mut sim = Simulation::new(&graph, base_config(21), StaticController::tiny(2, 2));
        sim.run(&arrivals)
    };
    assert!(fixed.cost.is_none(), "fixed fleets have no billing");
    let elastic = {
        let mut config = base_config(21);
        config.elastic = Some(elastic_config(4, 4, 5.0));
        let mut policy = StaticFleet;
        let mut sim = Simulation::new(&graph, config, StaticController::tiny(2, 2));
        sim.run_elastic(&arrivals, &mut policy)
    };
    assert_eq!(fixed.summary, elastic.summary);
    let cost = elastic.cost.expect("elastic runs report cost");
    // 4 workers for the whole run (last arrival + 10 s drain).
    let expected = 4.0 * (arrivals.last().unwrap() + 10.0);
    assert!((cost.total_gpu_seconds - expected).abs() < 1e-3);
    assert_eq!(cost.per_class[0].provisioned, 0);
    assert_eq!(cost.per_class[0].retired, 0);
}

#[test]
fn provisioning_is_clamped_to_the_fleet_bound() {
    let graph = zoo::tiny_pipeline(200.0);
    let trace = generators::constant(20, 40.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Uniform, 6);
    let mut config = base_config(23);
    config.elastic = Some(elastic_config(2, 3, 1.0));
    let mut policy = ScriptedPolicy {
        script: vec![(
            10.0,
            vec![ElasticAction::Provision {
                class: 0,
                count: 50,
            }],
        )],
    };
    let mut sim = Simulation::new(&graph, config, StaticController::tiny(1, 1));
    let result = sim.run_elastic(&arrivals, &mut policy);
    let cost = result.cost.expect("cost");
    assert_eq!(
        cost.per_class[0].provisioned, 1,
        "a 50-worker ask on a 3-bound fleet of 2 must provision exactly 1"
    );
    assert_eq!(cost.peak_fleet, 3);
}
