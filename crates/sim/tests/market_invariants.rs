//! Adversarial-market invariants of the engine:
//!
//! * billing stops exactly at the revocation instant, not at the end of the
//!   forced-drain grace period (pinned to the microsecond with a
//!   probability-1 revocation);
//! * lost in-flight batches are re-queued, never dropped on the floor —
//!   request accounting is conserved through arbitrary revocation storms;
//! * forced drains are invisible to the policy's `draining` observation (the
//!   autoscaler's voluntary-drain hysteresis must not count the market's
//!   victims), while the cumulative revocation counter is visible;
//! * a market whose rates are all zero is bit-identical to no market at all;
//! * `WorkerClass::memory_gb` is documented vacuous — two catalogs differing
//!   only in memory run bit-identically.

use loki_pipeline::{zoo, VariantId};
use loki_sim::{
    AllocationPlan, CompiledPlan, Controller, DropPolicy, ElasticAction, ElasticObservation,
    ElasticPolicy, ElasticSimConfig, InstanceSpec, MarketConfig, ObservedState, RoutingPlan,
    SimConfig, Simulation, WorkerClass, WorkerClassCatalog,
};
use loki_workload::{generate_arrivals, generators, ArrivalProcess};
use std::collections::HashMap;

/// A fixed controller (static allocation, uniform routing) so the tests
/// exercise the market mechanics without control-plane intelligence.
struct StaticController {
    plan: AllocationPlan,
}

impl StaticController {
    fn tiny(replicas_a: usize, replicas_b: usize) -> Self {
        Self {
            plan: AllocationPlan {
                instances: vec![
                    InstanceSpec {
                        variant: VariantId::new(0, 1),
                        max_batch: 4,
                        count: replicas_a,
                    },
                    InstanceSpec {
                        variant: VariantId::new(1, 1),
                        max_batch: 4,
                        count: replicas_b,
                    },
                ],
                latency_budgets_ms: HashMap::new(),
                drop_policy: DropPolicy::NoEarlyDropping,
            },
        }
    }
}

impl Controller for StaticController {
    fn name(&self) -> &str {
        "static"
    }

    fn control_interval_s(&self) -> f64 {
        5.0
    }

    fn plan(&mut self, observed: &ObservedState<'_>) -> Option<AllocationPlan> {
        let _ = observed;
        Some(self.plan.clone())
    }

    fn routing(&mut self, observed: &ObservedState<'_>) -> Option<CompiledPlan> {
        let mut plan = RoutingPlan::default();
        let mut num_tasks = 0;
        for w in observed.workers {
            if let Some(v) = w.variant {
                if v.task == 0 {
                    plan.frontend.push((w.id, 1.0));
                }
                plan.downstream_default
                    .entry(v.task)
                    .or_default()
                    .push((w.id, 1.0));
                num_tasks = num_tasks.max(v.task + 1);
            }
        }
        Some(CompiledPlan::from_routing_plan(&plan, num_tasks))
    }
}

/// A policy that replays a fixed script of `(tick_time_s, actions)` entries.
struct ScriptedPolicy {
    script: Vec<(f64, Vec<ElasticAction>)>,
}

impl ElasticPolicy for ScriptedPolicy {
    fn name(&self) -> &str {
        "scripted"
    }

    fn decide(&mut self, observation: &ElasticObservation<'_>) -> Vec<ElasticAction> {
        let mut out = Vec::new();
        self.script.retain(|(when, actions)| {
            if *when <= observation.now_s {
                out.extend(actions.iter().copied());
                false
            } else {
                true
            }
        });
        out
    }
}

/// On-demand reference class plus a spot twin, `0.001 $/s` each so billed
/// dollars are easy to eyeball.
fn spot_catalog(memory_gb: f64) -> WorkerClassCatalog {
    WorkerClassCatalog {
        classes: vec![
            WorkerClass {
                name: "gpu".to_string(),
                latency_scale: 1.0,
                memory_gb,
                price_per_hour: 3.6,
                boot_delay_s: 5.0,
                spot: false,
            },
            WorkerClass {
                name: "gpu-spot".to_string(),
                latency_scale: 1.0,
                memory_gb,
                price_per_hour: 3.6,
                boot_delay_s: 5.0,
                spot: true,
            },
        ],
    }
}

/// A market that revokes every warm spot worker at the first tick: rate 720/h
/// over a 5 s check interval puts the per-worker revocation probability at
/// exactly 1.
fn shredder(deadline_s: f64) -> MarketConfig {
    MarketConfig {
        revocation_rate_per_hour: 720.0,
        revocation_deadline_s: deadline_s,
        check_interval_s: 5.0,
        ..MarketConfig::default()
    }
}

fn elastic_config(
    initial: Vec<(usize, usize)>,
    max_fleet: usize,
    market: Option<MarketConfig>,
) -> ElasticSimConfig {
    ElasticSimConfig {
        catalog: spot_catalog(40.0),
        initial,
        max_fleet,
        decide_interval_s: 10.0,
        market,
    }
}

fn base_config(seed: u64) -> SimConfig {
    SimConfig {
        cluster_size: 8,
        network_delay_ms: 1.0,
        model_swap_ms: 0.0,
        control_interval_s: 5.0,
        metrics_interval_s: 1.0,
        seed,
        initial_demand_hint: Some(40.0),
        drain_s: 10.0,
        ..SimConfig::default()
    }
}

#[test]
fn billing_stops_exactly_at_revocation() {
    // Two on-demand workers and one spot worker; the probability-1 market
    // revokes the spot worker at the first tick, t=5 s exactly. Its billed
    // span is 5 GPU-seconds to the microsecond even though the forced drain
    // grants a 2 s grace period — billing stops when the provider pulls the
    // lease, not when the victim finishes dying.
    let graph = zoo::tiny_pipeline(200.0);
    let trace = generators::constant(20, 40.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Uniform, 3);
    let mut config = base_config(7);
    config.elastic = Some(elastic_config(vec![(0, 2), (1, 1)], 8, Some(shredder(2.0))));
    let mut policy = ScriptedPolicy { script: vec![] };
    let mut sim = Simulation::new(&graph, config, StaticController::tiny(1, 1));
    let result = sim.run_elastic(&arrivals, &mut policy);
    let cost = result.cost.expect("elastic runs report cost");
    let spot = cost.per_class.iter().find(|c| c.spot).expect("spot class");
    assert_eq!(spot.revocations, 1);
    assert_eq!(spot.retired, 1);
    assert!(
        (spot.gpu_seconds - 5.0).abs() < 1e-6,
        "spot billing must stop at the t=5 s revocation, got {} GPU-seconds",
        spot.gpu_seconds
    );
    // The on-demand pair is never revoked and bills to the end of the run.
    let od = cost.per_class.iter().find(|c| !c.spot).expect("od class");
    assert_eq!(od.revocations, 0);
    let end_s = arrivals.last().unwrap() + 10.0;
    assert!((od.gpu_seconds - 2.0 * end_s).abs() < 1e-3);
    assert_eq!(cost.revocations, 1);
}

#[test]
fn lost_batches_requeue_and_conserve_queries() {
    // Four spot workers under heavy load are all revoked at t=5 s with a
    // near-zero deadline, so in-flight batches are aborted and re-queued at
    // the lane head. Nothing may fall on the floor: every arrival is still
    // on-time, late, or dropped, and the surviving on-demand pair serves the
    // rest of the run.
    let graph = zoo::tiny_pipeline(200.0);
    let trace = generators::constant(30, 300.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 5);
    let run = || {
        let mut config = base_config(11);
        config.elastic = Some(elastic_config(
            vec![(0, 2), (1, 4)],
            8,
            Some(shredder(0.001)),
        ));
        let mut policy = ScriptedPolicy { script: vec![] };
        let mut sim = Simulation::new(&graph, config, StaticController::tiny(3, 3));
        sim.run_elastic(&arrivals, &mut policy)
    };
    let result = run();
    let s = &result.summary;
    assert_eq!(
        s.total_on_time + s.total_late + s.total_dropped,
        s.total_arrivals,
        "revocation storms must not lose requests: {s:?}"
    );
    let cost = result.cost.expect("cost");
    assert_eq!(cost.revocations, 4, "all four spot workers revoked");
    assert!(
        s.total_on_time > 0,
        "the surviving on-demand pair must keep serving"
    );
    // Same-seed runs through the storm are bit-identical.
    assert_eq!(result.summary, run().summary);
}

#[test]
fn forced_drains_are_invisible_to_the_policy() {
    // The autoscaler's voluntary-drain hysteresis keys off
    // `ElasticObservation::draining`; the market's forced drains must never
    // appear there (the policy did not choose them), while the cumulative
    // revocation counter must be visible so policies can price the market.
    struct Probe {
        max_draining_seen: usize,
        revocations_seen: u64,
    }
    impl ElasticPolicy for Probe {
        fn name(&self) -> &str {
            "probe"
        }
        fn decide(&mut self, observation: &ElasticObservation<'_>) -> Vec<ElasticAction> {
            let draining: usize = observation.draining.iter().sum();
            self.max_draining_seen = self.max_draining_seen.max(draining);
            self.revocations_seen = self.revocations_seen.max(observation.revocations);
            Vec::new()
        }
    }
    let graph = zoo::tiny_pipeline(200.0);
    let trace = generators::constant(30, 40.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Uniform, 9);
    let mut config = base_config(13);
    let mut elastic = elastic_config(vec![(0, 2), (1, 3)], 8, Some(shredder(2.0)));
    // Tick every second so the 2 s forced-drain window cannot slip between
    // policy observations.
    elastic.decide_interval_s = 1.0;
    config.elastic = Some(elastic);
    let mut policy = Probe {
        max_draining_seen: 0,
        revocations_seen: 0,
    };
    let mut sim = Simulation::new(&graph, config, StaticController::tiny(2, 2));
    let result = sim.run_elastic(&arrivals, &mut policy);
    assert_eq!(result.cost.expect("cost").revocations, 3);
    assert_eq!(
        policy.max_draining_seen, 0,
        "forced drains must not leak into the voluntary-drain observation"
    );
    assert_eq!(
        policy.revocations_seen, 3,
        "the cumulative revocation counter must be observable"
    );
}

#[test]
fn zero_rate_market_is_bit_identical_to_no_market() {
    // A market with zero revocation rate, zero stockout probability, and an
    // empty price schedule draws no randomness and schedules no events: the
    // run must be bit-identical to the PR 5 friendly cloud (`market: None`),
    // including billing.
    let graph = zoo::tiny_pipeline(200.0);
    let trace = generators::constant(25, 60.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 17);
    let run = |market: Option<MarketConfig>| {
        let mut config = base_config(21);
        config.elastic = Some(elastic_config(vec![(0, 2), (1, 2)], 8, market));
        // Exercise the scaling paths too: a mid-run provision and drain.
        let mut policy = ScriptedPolicy {
            script: vec![
                (8.0, vec![ElasticAction::Provision { class: 1, count: 2 }]),
                (18.0, vec![ElasticAction::Drain { class: 1, count: 1 }]),
            ],
        };
        let mut sim = Simulation::new(&graph, config, StaticController::tiny(2, 2));
        sim.run_elastic(&arrivals, &mut policy)
    };
    let friendly = run(None);
    let zeroed = run(Some(MarketConfig::default()));
    assert_eq!(friendly.summary, zeroed.summary);
    let (a, b) = (friendly.cost.expect("cost"), zeroed.cost.expect("cost"));
    assert_eq!(a.total_gpu_seconds, b.total_gpu_seconds);
    assert_eq!(a.total_dollars, b.total_dollars);
    assert_eq!(b.revocations, 0);
    assert_eq!(b.stockouts, 0);
}

#[test]
fn memory_capacity_is_vacuous() {
    // `WorkerClass::memory_gb` is documented as carrying no behavior (no
    // variant has a memory footprint yet): two catalogs differing only in
    // memory must run bit-identically, billing included. If this test ever
    // fails, memory grew semantics — update the field's documentation and
    // the capacity model together.
    let graph = zoo::tiny_pipeline(200.0);
    let trace = generators::constant(20, 50.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 29);
    let run = |memory_gb: f64| {
        let mut config = base_config(31);
        config.elastic = Some(ElasticSimConfig {
            catalog: spot_catalog(memory_gb),
            initial: vec![(0, 2), (1, 2)],
            max_fleet: 8,
            decide_interval_s: 10.0,
            market: Some(shredder(2.0)),
        });
        let mut policy = ScriptedPolicy { script: vec![] };
        let mut sim = Simulation::new(&graph, config, StaticController::tiny(2, 2));
        sim.run_elastic(&arrivals, &mut policy)
    };
    let small = run(16.0);
    let huge = run(4096.0);
    assert_eq!(small.summary, huge.summary);
    assert_eq!(
        small.cost.expect("cost").total_gpu_seconds,
        huge.cost.expect("cost").total_gpu_seconds
    );
}
