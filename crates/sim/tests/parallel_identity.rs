//! Sharded-engine determinism guards: lane-parallel execution must be
//! *bit-identical* to serial execution.
//!
//! The engine runs each pipeline lane on its own worker thread between
//! rebalance epochs (`MultiSimConfig::jobs`), merging at epoch barriers. These
//! tests pin the contract that `jobs` changes wall-clock time and nothing
//! else:
//!
//! 1. `jobs_values_are_bit_identical_across_seeds`: a four-lane contended run
//!    produces identical per-lane summaries, interval series, and event counts
//!    for `jobs ∈ {1, 2, 4}`, across several seeds.
//! 2. `migration_heavy_seesaw_is_bit_identical`: an adversarial arbiter that
//!    flips the partition every epoch (so workers migrate constantly, the
//!    code path where lane-local state crosses shard boundaries) stays
//!    bit-identical under parallel execution.
//! 3. `single_lane_parallel_path_matches_dedicated_simulation`: a one-lane
//!    `MultiSimulation` at any `jobs` value reproduces the dedicated
//!    single-pipeline `Simulation` bit for bit — the sharded path is a strict
//!    generalization, not a fork.
//!
//! Wall-clock fields (`lane_wall_s`, `barrier_wait_s`) are host measurements
//! and deliberately excluded from every comparison.

use loki_pipeline::{zoo, PipelineGraph, VariantId};
use loki_sim::{
    apportion, AllocationPlan, ArbiterObservation, CompiledPlan, Controller, DropPolicy,
    InstanceSpec, MultiPipeline, MultiSimConfig, MultiSimResult, MultiSimulation, ObservedState,
    ResourceArbiter, RoutingPlan, SimConfig,
};
use loki_workload::{generate_arrivals, generators, ArrivalProcess};
use std::collections::HashMap;

/// A controller that re-asserts a fixed allocation every control tick and
/// routes uniformly over whatever instances its partition currently holds.
/// Re-planning each tick (rather than once) matters here: it makes the lane
/// reconcile instances after every migration, exercising the model-swap path
/// under the seesaw arbiter.
struct StaticController {
    plan: AllocationPlan,
}

impl StaticController {
    fn tiny(replicas: usize, batch: u32) -> Self {
        Self {
            plan: AllocationPlan {
                instances: vec![
                    InstanceSpec {
                        variant: VariantId::new(0, 1),
                        max_batch: batch,
                        count: replicas,
                    },
                    InstanceSpec {
                        variant: VariantId::new(1, 1),
                        max_batch: batch,
                        count: replicas,
                    },
                ],
                latency_budgets_ms: HashMap::new(),
                drop_policy: DropPolicy::NoEarlyDropping,
            },
        }
    }
}

impl Controller for StaticController {
    fn name(&self) -> &str {
        "static"
    }

    fn plan(&mut self, _observed: &ObservedState<'_>) -> Option<AllocationPlan> {
        Some(self.plan.clone())
    }

    fn routing(&mut self, observed: &ObservedState<'_>) -> Option<CompiledPlan> {
        let mut plan = RoutingPlan::default();
        let mut num_tasks = 0;
        for w in observed.workers {
            if let Some(v) = w.variant {
                if v.task == 0 {
                    plan.frontend.push((w.id, 1.0));
                }
                plan.downstream_default
                    .entry(v.task)
                    .or_default()
                    .push((w.id, 1.0));
                num_tasks = num_tasks.max(v.task + 1);
            }
        }
        Some(CompiledPlan::from_routing_plan(&plan, num_tasks))
    }
}

/// An arbiter that flips the cluster split every epoch: odd epochs favour the
/// low-index lanes, even epochs the high-index ones. Every tick moves workers,
/// which is exactly the behaviour the epoch-barrier migration path must absorb
/// without perturbing lane-local event order.
struct SeesawArbiter {
    epoch: u64,
}

impl ResourceArbiter for SeesawArbiter {
    fn name(&self) -> &str {
        "seesaw"
    }

    fn rebalance_interval_s(&self) -> f64 {
        2.0
    }

    fn partition(&mut self, observation: &ArbiterObservation<'_>) -> Option<Vec<usize>> {
        self.epoch += 1;
        let lanes = observation.partition.len();
        let weights: Vec<f64> = (0..lanes)
            .map(|i| {
                if i.is_multiple_of(2) == self.epoch.is_multiple_of(2) {
                    3.0
                } else {
                    1.0
                }
            })
            .collect();
        Some(apportion(&weights, observation.cluster_size))
    }
}

fn base_config(seed: u64) -> SimConfig {
    SimConfig {
        cluster_size: 16,
        drain_s: 10.0,
        seed,
        ..SimConfig::default()
    }
}

/// Four tiny-pipeline lanes with staggered Poisson arrival streams, run under
/// the seesaw arbiter with the given engine parallelism.
fn four_lane_run(seed: u64, jobs: usize) -> MultiSimResult {
    let graphs: Vec<PipelineGraph> = (0..4).map(|_| zoo::tiny_pipeline(200.0)).collect();
    let trace = generators::constant(20, 30.0);
    let mut multi = MultiSimulation::new(MultiSimConfig {
        sim: base_config(seed),
        jobs,
    });
    for (i, graph) in graphs.iter().enumerate() {
        multi.add_pipeline(MultiPipeline {
            name: format!("lane{i}"),
            graph,
            controller: Box::new(StaticController::tiny(2, 4)),
            arrivals_s: generate_arrivals(&trace, ArrivalProcess::Poisson, seed + i as u64),
            initial_demand_hint: Some(30.0),
        });
    }
    let mut arbiter = SeesawArbiter { epoch: 0 };
    multi.run(&mut arbiter)
}

/// Everything deterministic about a run must match; host-time fields must not
/// participate.
fn assert_bit_identical(a: &MultiSimResult, b: &MultiSimResult, what: &str) {
    assert_eq!(a.pipelines.len(), b.pipelines.len(), "{what}: lane count");
    for (lane_a, lane_b) in a.pipelines.iter().zip(&b.pipelines) {
        assert_eq!(lane_a.name, lane_b.name, "{what}: lane order");
        assert_eq!(
            lane_a.result.summary, lane_b.result.summary,
            "{what}: lane {} summary",
            lane_a.name
        );
        assert_eq!(
            lane_a.result.intervals, lane_b.result.intervals,
            "{what}: lane {} interval series",
            lane_a.name
        );
    }
    assert_eq!(a.total_events, b.total_events, "{what}: total events");
    assert_eq!(a.rebalances, b.rebalances, "{what}: rebalances");
    assert_eq!(a.migrations, b.migrations, "{what}: migrations");
    assert_eq!(a.cost, b.cost, "{what}: cost accounting");
}

#[test]
fn jobs_values_are_bit_identical_across_seeds() {
    for seed in [7, 11, 42] {
        let serial = four_lane_run(seed, 1);
        for jobs in [2, 4] {
            let parallel = four_lane_run(seed, jobs);
            assert_bit_identical(&serial, &parallel, &format!("seed {seed} jobs {jobs}"));
        }
    }
}

#[test]
fn migration_heavy_seesaw_is_bit_identical() {
    let serial = four_lane_run(42, 1);
    assert!(
        serial.migrations > 0,
        "the seesaw arbiter must actually migrate workers (got {} over {} rebalances)",
        serial.migrations,
        serial.rebalances
    );
    assert!(
        serial.rebalances >= 5,
        "partition must shift on (nearly) every epoch, got {}",
        serial.rebalances
    );
    let parallel = four_lane_run(42, 4);
    assert_bit_identical(&serial, &parallel, "seesaw jobs 4");
}

#[test]
fn single_lane_parallel_path_matches_dedicated_simulation() {
    let graph = zoo::tiny_pipeline(200.0);
    let trace = generators::constant(20, 40.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 3);

    let mut config = base_config(42);
    config.initial_demand_hint = Some(40.0);
    let single = loki_sim::Simulation::new(&graph, config, StaticController::tiny(3, 4))
        .run(&arrivals)
        .summary;

    for jobs in [1, 2, 4] {
        let mut multi = MultiSimulation::new(MultiSimConfig {
            sim: base_config(42),
            jobs,
        });
        multi.add_pipeline(MultiPipeline {
            name: "only".to_string(),
            graph: &graph,
            controller: Box::new(StaticController::tiny(3, 4)),
            arrivals_s: arrivals.clone(),
            initial_demand_hint: Some(40.0),
        });
        let mut arbiter = loki_sim::StaticPartition::even(1);
        let result = multi.run(&mut arbiter);
        assert_eq!(
            result.pipelines[0].result.summary, single,
            "jobs={jobs}: a one-lane multi run must reproduce the dedicated \
             single-pipeline simulation bit for bit"
        );
    }
}
