//! Observability determinism guards: query tracing records *simulated* time,
//! so traces must be bit-identical for every `jobs` value, and turning
//! tracing/profiling on must not perturb the simulation itself.
//!
//! 1. `traces_are_bit_identical_across_jobs`: a four-lane contended run under
//!    a migration-heavy seesaw arbiter produces identical per-lane span trees
//!    (same sampled roots, same spans, same timestamps) for `jobs ∈ {1, 2, 4}`.
//! 2. `observability_does_not_perturb_the_simulation`: the same run with
//!    tracing + profiling on yields a summary and interval series bit-identical
//!    to the run with observability off.
//! 3. `critical_path_is_bounded_by_measured_latency`: for every sampled root,
//!    `critical_path().total_us <= latency_us()` and the per-kind components
//!    sum to no more than the total.

use loki_pipeline::{zoo, PipelineGraph, VariantId};
use loki_sim::{
    apportion, AllocationPlan, ArbiterObservation, CompiledPlan, Controller, DropPolicy,
    InstanceSpec, MultiPipeline, MultiSimConfig, MultiSimResult, MultiSimulation, ObserveConfig,
    ObservedState, ResourceArbiter, RoutingPlan, SimConfig,
};
use loki_workload::{generate_arrivals, generators, ArrivalProcess};
use std::collections::HashMap;

struct StaticController {
    plan: AllocationPlan,
}

impl StaticController {
    fn tiny(replicas: usize, batch: u32) -> Self {
        Self {
            plan: AllocationPlan {
                instances: vec![
                    InstanceSpec {
                        variant: VariantId::new(0, 1),
                        max_batch: batch,
                        count: replicas,
                    },
                    InstanceSpec {
                        variant: VariantId::new(1, 1),
                        max_batch: batch,
                        count: replicas,
                    },
                ],
                latency_budgets_ms: HashMap::new(),
                drop_policy: DropPolicy::NoEarlyDropping,
            },
        }
    }
}

impl Controller for StaticController {
    fn name(&self) -> &str {
        "static"
    }

    fn plan(&mut self, _observed: &ObservedState<'_>) -> Option<AllocationPlan> {
        Some(self.plan.clone())
    }

    fn routing(&mut self, observed: &ObservedState<'_>) -> Option<CompiledPlan> {
        let mut plan = RoutingPlan::default();
        let mut num_tasks = 0;
        for w in observed.workers {
            if let Some(v) = w.variant {
                if v.task == 0 {
                    plan.frontend.push((w.id, 1.0));
                }
                plan.downstream_default
                    .entry(v.task)
                    .or_default()
                    .push((w.id, 1.0));
                num_tasks = num_tasks.max(v.task + 1);
            }
        }
        Some(CompiledPlan::from_routing_plan(&plan, num_tasks))
    }
}

/// Flips the cluster split every epoch so workers migrate constantly — the
/// requeue/re-home paths leave `Requeue` trace markers, which must land
/// identically regardless of lane parallelism.
struct SeesawArbiter {
    epoch: u64,
}

impl ResourceArbiter for SeesawArbiter {
    fn name(&self) -> &str {
        "seesaw"
    }

    fn rebalance_interval_s(&self) -> f64 {
        2.0
    }

    fn partition(&mut self, observation: &ArbiterObservation<'_>) -> Option<Vec<usize>> {
        self.epoch += 1;
        let lanes = observation.partition.len();
        let weights: Vec<f64> = (0..lanes)
            .map(|i| {
                if i.is_multiple_of(2) == self.epoch.is_multiple_of(2) {
                    3.0
                } else {
                    1.0
                }
            })
            .collect();
        Some(apportion(&weights, observation.cluster_size))
    }
}

fn observed_config(seed: u64, observe: ObserveConfig) -> SimConfig {
    SimConfig {
        cluster_size: 16,
        drain_s: 10.0,
        seed,
        observe,
        ..SimConfig::default()
    }
}

fn four_lane_run(seed: u64, jobs: usize, observe: ObserveConfig) -> MultiSimResult {
    let graphs: Vec<PipelineGraph> = (0..4).map(|_| zoo::tiny_pipeline(200.0)).collect();
    let trace = generators::constant(20, 30.0);
    let mut multi = MultiSimulation::new(MultiSimConfig {
        sim: observed_config(seed, observe),
        jobs,
    });
    for (i, graph) in graphs.iter().enumerate() {
        multi.add_pipeline(MultiPipeline {
            name: format!("lane{i}"),
            graph,
            controller: Box::new(StaticController::tiny(2, 4)),
            arrivals_s: generate_arrivals(&trace, ArrivalProcess::Poisson, seed + i as u64),
            initial_demand_hint: Some(30.0),
        });
    }
    let mut arbiter = SeesawArbiter { epoch: 0 };
    multi.run(&mut arbiter)
}

fn dense_tracing() -> ObserveConfig {
    ObserveConfig {
        trace_sample: 3,
        profile: true,
        histograms: true,
        timeline: true,
    }
}

#[test]
fn traces_are_bit_identical_across_jobs() {
    for seed in [7, 42] {
        let serial = four_lane_run(seed, 1, dense_tracing());
        for jobs in [2, 4] {
            let parallel = four_lane_run(seed, jobs, dense_tracing());
            assert_eq!(
                serial.pipelines.len(),
                parallel.pipelines.len(),
                "seed {seed} jobs {jobs}: lane count"
            );
            for (a, b) in serial.pipelines.iter().zip(&parallel.pipelines) {
                let ta = a.result.trace.as_ref().expect("serial lane trace");
                let tb = b.result.trace.as_ref().expect("parallel lane trace");
                assert!(
                    !ta.roots.is_empty(),
                    "seed {seed} lane {}: dense sampling must capture roots",
                    a.name
                );
                // RootTrace derives PartialEq over every field — lane,
                // arrival index, simulated timestamps, and the full span list.
                assert_eq!(
                    ta.roots, tb.roots,
                    "seed {seed} jobs {jobs}: lane {} span trees",
                    a.name
                );
                assert_eq!(
                    a.result.latency, b.result.latency,
                    "seed {seed} jobs {jobs}: lane {} latency histograms",
                    a.name
                );
            }
        }
    }
}

#[test]
fn observability_does_not_perturb_the_simulation() {
    let plain = four_lane_run(11, 2, ObserveConfig::default());
    let observed = four_lane_run(11, 2, dense_tracing());
    for (a, b) in plain.pipelines.iter().zip(&observed.pipelines) {
        assert_eq!(
            a.result.summary.total_on_time, b.result.summary.total_on_time,
            "lane {}: tracing/profiling changed on-time count",
            a.name
        );
        assert_eq!(
            a.result.summary.total_dropped, b.result.summary.total_dropped,
            "lane {}: tracing/profiling changed drop count",
            a.name
        );
        assert_eq!(
            a.result.intervals, b.result.intervals,
            "lane {}: tracing/profiling changed the interval series",
            a.name
        );
    }
    assert_eq!(plain.total_events, observed.total_events, "event count");
    assert_eq!(plain.migrations, observed.migrations, "migrations");
}

/// The timeline channel (cluster journal + per-interval histogram deltas)
/// records simulated time only, so it must be bit-identical for every `jobs`
/// value — even under a migration-heavy arbiter.
#[test]
fn timeline_is_bit_identical_across_jobs() {
    for seed in [7, 42] {
        let serial = four_lane_run(seed, 1, dense_tracing());
        let parallel = four_lane_run(seed, 2, dense_tracing());
        let ja = serial.journal.as_ref().expect("serial journal");
        let jb = parallel.journal.as_ref().expect("parallel journal");
        assert!(
            !ja.is_empty(),
            "seed {seed}: the seesaw arbiter must journal rebalances"
        );
        assert!(
            ja.count_matching(|k| matches!(k, loki_sim::JournalKind::Migration { .. })) > 0,
            "seed {seed}: migrations must be journaled"
        );
        assert_eq!(ja.events, jb.events, "seed {seed}: journal event streams");
        for (a, b) in serial.pipelines.iter().zip(&parallel.pipelines) {
            assert_eq!(
                a.result.window, b.result.window,
                "seed {seed}: lane {} windowed histograms",
                a.name
            );
        }
    }
}

/// The windowed recorder is reset-based: merging every per-interval delta must
/// reproduce the whole-run end-to-end histogram exactly (same counts, same
/// min/max), per lane and for the aggregate.
#[test]
fn window_deltas_remerge_to_the_run_histogram() {
    let run = four_lane_run(11, 2, dense_tracing());
    for lane in &run.pipelines {
        let rows = lane.result.window.as_ref().expect("lane window rows");
        assert_eq!(
            rows.len(),
            lane.result.intervals.len(),
            "lane {}: one histogram delta per interval",
            lane.name
        );
        let mut merged = loki_sim::Histogram::new();
        for row in rows {
            merged.merge(row);
        }
        let e2e = &lane.result.latency.as_ref().expect("lane histograms").e2e;
        assert_eq!(
            &merged, e2e,
            "lane {}: re-merged deltas differ from the run histogram",
            lane.name
        );
    }
    let agg = run.aggregate(16);
    let rows = agg.window.as_ref().expect("aggregate window rows");
    let mut merged = loki_sim::Histogram::new();
    for row in rows {
        merged.merge(row);
    }
    assert_eq!(
        &merged,
        &agg.latency.as_ref().expect("aggregate histograms").e2e,
        "aggregate: re-merged deltas differ from the merged run histogram"
    );
}

#[test]
fn critical_path_is_bounded_by_measured_latency() {
    let run = four_lane_run(42, 2, dense_tracing());
    let mut checked = 0usize;
    for lane in &run.pipelines {
        let log = lane.result.trace.as_ref().expect("lane trace");
        for root in &log.roots {
            let cp = root.critical_path();
            assert!(
                cp.total_us <= root.latency_us(),
                "lane {} root {}: critical path {}us exceeds measured latency {}us",
                lane.name,
                root.arrival_index,
                cp.total_us,
                root.latency_us()
            );
            assert!(
                cp.queue_us + cp.exec_us + cp.network_us <= cp.total_us,
                "lane {} root {}: critical-path components exceed the total",
                lane.name,
                root.arrival_index
            );
            checked += 1;
        }
    }
    assert!(
        checked > 10,
        "expected a meaningful trace corpus, got {checked}"
    );
}
