//! Expanding a per-second QPS trace into individual arrival timestamps.

use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How arrivals are distributed within each second of the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: the number of queries in each second is the trace rate and
    /// inter-arrival gaps are exponential. This is what the paper's simulator uses and
    /// what open-loop load generators produce.
    Poisson,
    /// Evenly spaced arrivals at exactly the trace rate (deterministic; useful for
    /// reproducible unit tests and capacity measurements without sampling noise).
    Uniform,
}

/// Generate arrival timestamps (in seconds, ascending) for a trace.
///
/// For [`ArrivalProcess::Poisson`] the expected number of arrivals equals the trace's
/// [`Trace::total_queries`]; the realized count fluctuates around it. For
/// [`ArrivalProcess::Uniform`] the realized count is the per-second rate rounded to an
/// integer (fractional rates carry over to subsequent seconds so the long-run rate is
/// preserved).
pub fn generate_arrivals(trace: &Trace, process: ArrivalProcess, seed: u64) -> Vec<f64> {
    match process {
        ArrivalProcess::Poisson => poisson_arrivals(trace, seed),
        ArrivalProcess::Uniform => uniform_arrivals(trace),
    }
}

fn poisson_arrivals(trace: &Trace, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(trace.total_queries() as usize + 16);
    for sec in 0..trace.duration_secs() {
        let rate = trace.qps_at(sec);
        if rate <= 0.0 {
            continue;
        }
        // Exponential inter-arrival times within the second.
        let mut t = sec as f64;
        let end = sec as f64 + 1.0;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -u.ln() / rate;
            if t >= end {
                break;
            }
            out.push(t);
        }
    }
    out
}

fn uniform_arrivals(trace: &Trace) -> Vec<f64> {
    let mut out = Vec::with_capacity(trace.total_queries() as usize + 16);
    let mut carry = 0.0f64;
    for sec in 0..trace.duration_secs() {
        let rate = trace.qps_at(sec);
        let want = rate + carry;
        let count = want.floor() as usize;
        carry = want - count as f64;
        if count == 0 {
            continue;
        }
        let gap = 1.0 / count as f64;
        for i in 0..count {
            out.push(sec as f64 + (i as f64 + 0.5) * gap);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn uniform_arrivals_match_rate_exactly() {
        let t = generators::constant(10, 100.0);
        let arr = generate_arrivals(&t, ArrivalProcess::Uniform, 0);
        assert_eq!(arr.len(), 1000);
        // sorted and within range
        assert!(arr.windows(2).all(|w| w[0] <= w[1]));
        assert!(arr.iter().all(|&x| (0.0..10.0).contains(&x)));
    }

    #[test]
    fn uniform_arrivals_carry_fractional_rates() {
        let t = generators::constant(10, 0.5);
        let arr = generate_arrivals(&t, ArrivalProcess::Uniform, 0);
        // 0.5 qps over 10 s -> 5 arrivals thanks to the carry
        assert_eq!(arr.len(), 5);
    }

    #[test]
    fn poisson_arrivals_are_reproducible_and_close_to_rate() {
        let t = generators::constant(60, 200.0);
        let a = generate_arrivals(&t, ArrivalProcess::Poisson, 42);
        let b = generate_arrivals(&t, ArrivalProcess::Poisson, 42);
        assert_eq!(a.len(), b.len());
        assert_eq!(a, b);
        let expected = 60.0 * 200.0;
        let got = a.len() as f64;
        assert!(
            (got - expected).abs() < 0.05 * expected,
            "got {got}, expected about {expected}"
        );
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn different_seeds_differ() {
        let t = generators::constant(10, 50.0);
        let a = generate_arrivals(&t, ArrivalProcess::Poisson, 1);
        let b = generate_arrivals(&t, ArrivalProcess::Poisson, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn zero_rate_produces_no_arrivals() {
        let t = generators::constant(10, 0.0);
        assert!(generate_arrivals(&t, ArrivalProcess::Poisson, 3).is_empty());
        assert!(generate_arrivals(&t, ArrivalProcess::Uniform, 3).is_empty());
    }

    #[test]
    fn time_varying_rate_is_respected() {
        let t = generators::steps(&[(10, 10.0), (10, 200.0)]);
        let arr = generate_arrivals(&t, ArrivalProcess::Poisson, 7);
        let first: usize = arr.iter().filter(|&&x| x < 10.0).count();
        let second: usize = arr.iter().filter(|&&x| x >= 10.0).count();
        assert!(second > 10 * first, "first={first}, second={second}");
    }
}
