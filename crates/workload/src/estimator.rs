//! Demand estimation: the exponentially-weighted moving average and the demand history
//! the Resource Manager consults (Section 4.2 of the paper), plus the windowed
//! per-phase [`SeasonalEstimator`] the forecasting provisioner pre-boots from.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An exponentially-weighted moving-average estimator.
///
/// The paper: "To estimate the demand to serve, we use an exponentially weighted moving
/// average on the recent demand history."
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EwmaEstimator {
    alpha: f64,
    value: Option<f64>,
}

impl EwmaEstimator {
    /// Create an estimator with smoothing factor `alpha` in `(0, 1]`; larger values
    /// react faster to recent observations.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// The current estimate (0 before any observation).
    pub fn estimate(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// True if at least one observation has been made.
    pub fn is_warm(&self) -> bool {
        self.value.is_some()
    }

    /// Reset to the initial (cold) state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// A sliding window of recent per-interval demand observations plus an EWMA estimate,
/// as stored in Loki's Metadata Store and consulted by the Resource Manager.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemandHistory {
    window: usize,
    recent: VecDeque<f64>,
    ewma: EwmaEstimator,
    /// Headroom multiplier applied to the estimate when provisioning (provisioning for
    /// exactly the average demand under-provisions half the time).
    headroom: f64,
}

impl DemandHistory {
    /// Create a history with the given window length (number of observations kept),
    /// EWMA smoothing factor, and provisioning headroom multiplier (e.g. 1.1 = +10%).
    pub fn new(window: usize, alpha: f64, headroom: f64) -> Self {
        assert!(window >= 1);
        assert!(headroom >= 1.0);
        Self {
            window,
            recent: VecDeque::with_capacity(window),
            ewma: EwmaEstimator::new(alpha),
            headroom,
        }
    }

    /// Record the demand observed over the last interval (queries per second).
    pub fn observe(&mut self, qps: f64) {
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back(qps);
        self.ewma.observe(qps);
    }

    /// The smoothed demand estimate used for resource allocation, including headroom.
    /// Never less than the most recent observation's share of the peak in the window
    /// (a sudden spike should not be averaged away entirely).
    pub fn provisioning_estimate(&self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        let recent_max = self
            .recent
            .iter()
            .rev()
            .take(3)
            .copied()
            .fold(0.0, f64::max);
        let smoothed = self.ewma.estimate();
        self.headroom * smoothed.max(0.8 * recent_max)
    }

    /// The raw EWMA estimate without headroom.
    pub fn smoothed(&self) -> f64 {
        self.ewma.estimate()
    }

    /// The most recent observation, if any.
    pub fn last(&self) -> Option<f64> {
        self.recent.back().copied()
    }

    /// Peak demand within the window.
    pub fn window_peak(&self) -> f64 {
        self.recent.iter().copied().fold(0.0, f64::max)
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.recent.len()
    }

    /// True if no observations have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.recent.is_empty()
    }
}

/// A windowed per-phase demand estimator that fits a periodic (seasonal)
/// profile online and extrapolates the current ramp.
///
/// The period (e.g. one diurnal day, or the compressed day of the bench
/// traces) is split into `num_phases` equal phase bins; each bin keeps an
/// EWMA of the demand observed while the clock was inside it. A forecast for
/// `now + horizon` prefers the target phase's fitted level — scaled by the
/// ratio of the current observation to the current phase's fitted level, so a
/// day that runs hot or cold shifts the whole profile — and falls back to
/// linear trend extrapolation over a sliding window until the target phase
/// has been visited (the first period of a run, where no seasonal memory
/// exists yet).
///
/// The estimator also tracks its own skill: every `observe` scores the
/// forecast the estimator would have issued one horizon earlier against the
/// demand that actually arrived, maintaining an EWMA of the relative error.
/// A consumer (the forecasting provisioner) reads [`SeasonalEstimator::error`]
/// and falls back to reactive behavior when the forecast is not earning its
/// keep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SeasonalEstimator {
    period_s: f64,
    /// Per phase bin: EWMA of demand observed in the bin (`None` = unvisited).
    phases: Vec<Option<f64>>,
    alpha: f64,
    /// Sliding `(t_s, qps)` window for the trend fallback.
    recent: VecDeque<(f64, f64)>,
    window: usize,
    /// Pending self-scoring probes: `(due_t_s, forecast_qps)`.
    probes: VecDeque<(f64, f64)>,
    /// Horizon the self-scoring probes are issued at, seconds.
    probe_horizon_s: f64,
    /// EWMA of `|forecast - actual| / max(actual, 1)`.
    error: EwmaEstimator,
}

impl SeasonalEstimator {
    /// Create an estimator for a seasonal period of `period_s` seconds, split
    /// into `num_phases` bins, scoring its own forecasts at `probe_horizon_s`.
    pub fn new(period_s: f64, num_phases: usize, probe_horizon_s: f64) -> Self {
        assert!(period_s > 0.0, "period must be positive");
        assert!(num_phases >= 1, "need at least one phase bin");
        assert!(probe_horizon_s >= 0.0, "probe horizon must be >= 0");
        Self {
            period_s,
            phases: vec![None; num_phases],
            alpha: 0.4,
            recent: VecDeque::new(),
            window: 6,
            probes: VecDeque::new(),
            probe_horizon_s,
            error: EwmaEstimator::new(0.3),
        }
    }

    fn phase_of(&self, t_s: f64) -> usize {
        let frac = (t_s.rem_euclid(self.period_s)) / self.period_s;
        ((frac * self.phases.len() as f64) as usize).min(self.phases.len() - 1)
    }

    /// Record the demand observed at `now_s` (queries per second). Also
    /// settles any due self-scoring probes and issues the next one.
    pub fn observe(&mut self, now_s: f64, qps: f64) {
        // Settle probes that have come due: score the forecast made one
        // horizon ago against what actually arrived.
        while let Some(&(due, forecast)) = self.probes.front() {
            if due > now_s {
                break;
            }
            self.probes.pop_front();
            // A probe is scored against the first observation at or past its
            // due time — unless that observation arrives so late (a gap in
            // the feed) that the comparison would measure the gap, not the
            // forecast.
            if now_s - due > 0.5 * self.probe_horizon_s {
                continue;
            }
            // Symmetric relative error, bounded to [0, 2]: a miss at a
            // profile turn scores ~1 instead of exploding when the actual
            // demand is near zero.
            self.error
                .observe((forecast - qps).abs() / forecast.abs().max(qps.abs()).max(1.0));
        }
        // Fit the phase profile and the trend window.
        let phase = self.phase_of(now_s);
        self.phases[phase] = Some(match self.phases[phase] {
            None => qps,
            Some(v) => self.alpha * qps + (1.0 - self.alpha) * v,
        });
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back((now_s, qps));
        // Issue the next probe from the *post-update* state, mirroring how a
        // consumer would use the estimator at this tick.
        if self.probe_horizon_s > 0.0 {
            let f = self.forecast(now_s, self.probe_horizon_s);
            self.probes.push_back((now_s + self.probe_horizon_s, f));
        }
    }

    /// Forecast the demand at `now_s + horizon_s`. Prefers the target phase's
    /// fitted seasonal level (scaled to the current level); falls back to
    /// linear trend extrapolation over the recent window; 0 before any
    /// observation.
    pub fn forecast(&self, now_s: f64, horizon_s: f64) -> f64 {
        let Some(&(_, last_qps)) = self.recent.back() else {
            return 0.0;
        };
        let target = self.phase_of(now_s + horizon_s);
        let current = self.phase_of(now_s);
        if let (Some(seasonal_target), Some(seasonal_current)) =
            (self.phases[target], self.phases[current])
        {
            // Seasonal path — but only once the target bin holds *prior*
            // information. Mid-first-period both bins may be warm purely from
            // this ramp; the level-scaling still yields the right shape:
            // scale the target phase by how hot today runs vs the fit.
            if target != current && seasonal_current > 0.0 {
                let level = (last_qps / seasonal_current).clamp(0.25, 4.0);
                return (seasonal_target * level).max(0.0);
            }
        }
        // Trend fallback: least-squares slope over the recent window.
        if self.recent.len() < 2 {
            return last_qps;
        }
        let n = self.recent.len() as f64;
        let (mut st, mut sq, mut stt, mut stq) = (0.0, 0.0, 0.0, 0.0);
        for &(t, q) in &self.recent {
            st += t;
            sq += q;
            stt += t * t;
            stq += t * q;
        }
        let denom = n * stt - st * st;
        let slope = if denom.abs() < 1e-12 {
            0.0
        } else {
            (n * stq - st * sq) / denom
        };
        (last_qps + slope * horizon_s).max(0.0)
    }

    /// EWMA of the symmetric relative forecast error
    /// (`|forecast - actual| / max(|forecast|, |actual|, 1)`), in `[0, 1]`
    /// in practice; 0 until the first probe settles.
    pub fn error(&self) -> f64 {
        self.error.estimate()
    }

    /// True once at least one self-scoring probe has settled (the error
    /// signal carries information).
    pub fn scored(&self) -> bool {
        self.error.is_warm()
    }

    /// True once the phase bin covering `t_s` has been fitted.
    pub fn phase_warm(&self, t_s: f64) -> bool {
        self.phases[self.phase_of(t_s)].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = EwmaEstimator::new(0.3);
        assert!(!e.is_warm());
        assert_eq!(e.estimate(), 0.0);
        for _ in 0..100 {
            e.observe(50.0);
        }
        assert!((e.estimate() - 50.0).abs() < 1e-9);
        assert!(e.is_warm());
        e.reset();
        assert!(!e.is_warm());
    }

    #[test]
    fn ewma_tracks_level_shift_gradually() {
        let mut e = EwmaEstimator::new(0.5);
        e.observe(100.0);
        e.observe(200.0);
        // 0.5*200 + 0.5*100 = 150
        assert!((e.estimate() - 150.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_bad_alpha() {
        EwmaEstimator::new(0.0);
    }

    #[test]
    fn history_window_is_bounded() {
        let mut h = DemandHistory::new(3, 0.5, 1.0);
        for i in 0..10 {
            h.observe(i as f64);
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.last(), Some(9.0));
        assert_eq!(h.window_peak(), 9.0);
    }

    #[test]
    fn provisioning_estimate_includes_headroom_and_reacts_to_spikes() {
        let mut h = DemandHistory::new(60, 0.2, 1.1);
        for _ in 0..60 {
            h.observe(100.0);
        }
        let steady = h.provisioning_estimate();
        assert!((steady - 110.0).abs() < 1.0, "steady={steady}");
        // A sudden spike must lift the estimate well above the smoothed value.
        h.observe(500.0);
        let spiked = h.provisioning_estimate();
        assert!(spiked >= 0.8 * 500.0 * 1.1 - 1e-9, "spiked={spiked}");
    }

    #[test]
    fn empty_history_estimates_zero() {
        let h = DemandHistory::new(10, 0.5, 1.2);
        assert!(h.is_empty());
        assert_eq!(h.provisioning_estimate(), 0.0);
        assert_eq!(h.last(), None);
    }

    /// One "day" of a triangular diurnal profile: ramp up over the first
    /// half, down over the second, peak 1000, base 100.
    fn diurnal(t_s: f64, period_s: f64) -> f64 {
        let x = (t_s.rem_euclid(period_s)) / period_s;
        let tri = 1.0 - (2.0 * x - 1.0).abs();
        100.0 + 900.0 * tri
    }

    #[test]
    fn seasonal_estimator_cold_start_extrapolates_the_ramp() {
        let mut e = SeasonalEstimator::new(600.0, 12, 30.0);
        assert_eq!(e.forecast(0.0, 30.0), 0.0);
        // Observe a rising ramp inside one phase bin (t in [0, 50)): the
        // seasonal path has no cross-bin memory yet, so the forecast must
        // extrapolate the slope (~+10 qps/s) rather than hold the level.
        for i in 0..5 {
            let t = i as f64 * 10.0;
            e.observe(t, 100.0 + 10.0 * t);
        }
        let f = e.forecast(40.0, 30.0);
        assert!(
            (f - (500.0 + 300.0)).abs() < 50.0,
            "trend forecast should track the ramp, got {f}"
        );
    }

    #[test]
    fn seasonal_estimator_learns_the_profile_across_periods() {
        let period = 600.0;
        let mut e = SeasonalEstimator::new(period, 20, 30.0);
        // Two full days at 10 s ticks: the second day scores the first day's fit.
        for i in 0..120 {
            let t = i as f64 * 10.0;
            e.observe(t, diurnal(t, period));
        }
        // Mid-morning of day 3: the forecast for one bin ahead (+30 s) should
        // be close to the true profile, well above the current level on the
        // up-ramp.
        let now = 2.0 * period + 120.0;
        e.observe(now, diurnal(now, period));
        let f = e.forecast(now, 60.0);
        let truth = diurnal(now + 60.0, period);
        assert!(
            (f - truth).abs() / truth < 0.25,
            "seasonal forecast {f} should be within 25% of {truth}"
        );
        // And the self-scored error should be small after a clean day.
        assert!(e.scored());
        assert!(e.error() < 0.25, "error={}", e.error());
    }

    #[test]
    fn seasonal_estimator_error_spikes_when_the_profile_breaks() {
        let period = 600.0;
        let mut e = SeasonalEstimator::new(period, 20, 30.0);
        for i in 0..120 {
            let t = i as f64 * 10.0;
            e.observe(t, diurnal(t, period));
        }
        let calm = e.error();
        // Day 3 betrays the fit: flat near-zero demand where the profile
        // promised a ramp.
        for i in 0..30 {
            let t = 2.0 * period + i as f64 * 10.0;
            e.observe(t, 5.0);
        }
        assert!(
            e.error() > calm + 0.5,
            "profile break must spike the error: calm={calm}, now={}",
            e.error()
        );
    }

    #[test]
    fn seasonal_estimator_level_shift_scales_the_profile() {
        let period = 600.0;
        let mut e = SeasonalEstimator::new(period, 20, 30.0);
        for i in 0..60 {
            let t = i as f64 * 10.0;
            e.observe(t, diurnal(t, period));
        }
        // Day 2 runs 2x hot; the forecast should scale the fitted profile up.
        let now = period + 120.0;
        e.observe(now, 2.0 * diurnal(now, period));
        let f = e.forecast(now, 60.0);
        let truth = 2.0 * diurnal(now + 60.0, period);
        assert!(
            (f - truth).abs() / truth < 0.35,
            "level-scaled forecast {f} should be near {truth}"
        );
        assert!(e.phase_warm(now));
    }
}
