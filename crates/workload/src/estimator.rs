//! Demand estimation: the exponentially-weighted moving average and the demand history
//! the Resource Manager consults (Section 4.2 of the paper).

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// An exponentially-weighted moving-average estimator.
///
/// The paper: "To estimate the demand to serve, we use an exponentially weighted moving
/// average on the recent demand history."
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EwmaEstimator {
    alpha: f64,
    value: Option<f64>,
}

impl EwmaEstimator {
    /// Create an estimator with smoothing factor `alpha` in `(0, 1]`; larger values
    /// react faster to recent observations.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Self { alpha, value: None }
    }

    /// Feed one observation.
    pub fn observe(&mut self, x: f64) {
        self.value = Some(match self.value {
            None => x,
            Some(v) => self.alpha * x + (1.0 - self.alpha) * v,
        });
    }

    /// The current estimate (0 before any observation).
    pub fn estimate(&self) -> f64 {
        self.value.unwrap_or(0.0)
    }

    /// True if at least one observation has been made.
    pub fn is_warm(&self) -> bool {
        self.value.is_some()
    }

    /// Reset to the initial (cold) state.
    pub fn reset(&mut self) {
        self.value = None;
    }
}

/// A sliding window of recent per-interval demand observations plus an EWMA estimate,
/// as stored in Loki's Metadata Store and consulted by the Resource Manager.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemandHistory {
    window: usize,
    recent: VecDeque<f64>,
    ewma: EwmaEstimator,
    /// Headroom multiplier applied to the estimate when provisioning (provisioning for
    /// exactly the average demand under-provisions half the time).
    headroom: f64,
}

impl DemandHistory {
    /// Create a history with the given window length (number of observations kept),
    /// EWMA smoothing factor, and provisioning headroom multiplier (e.g. 1.1 = +10%).
    pub fn new(window: usize, alpha: f64, headroom: f64) -> Self {
        assert!(window >= 1);
        assert!(headroom >= 1.0);
        Self {
            window,
            recent: VecDeque::with_capacity(window),
            ewma: EwmaEstimator::new(alpha),
            headroom,
        }
    }

    /// Record the demand observed over the last interval (queries per second).
    pub fn observe(&mut self, qps: f64) {
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back(qps);
        self.ewma.observe(qps);
    }

    /// The smoothed demand estimate used for resource allocation, including headroom.
    /// Never less than the most recent observation's share of the peak in the window
    /// (a sudden spike should not be averaged away entirely).
    pub fn provisioning_estimate(&self) -> f64 {
        if self.recent.is_empty() {
            return 0.0;
        }
        let recent_max = self
            .recent
            .iter()
            .rev()
            .take(3)
            .copied()
            .fold(0.0, f64::max);
        let smoothed = self.ewma.estimate();
        self.headroom * smoothed.max(0.8 * recent_max)
    }

    /// The raw EWMA estimate without headroom.
    pub fn smoothed(&self) -> f64 {
        self.ewma.estimate()
    }

    /// The most recent observation, if any.
    pub fn last(&self) -> Option<f64> {
        self.recent.back().copied()
    }

    /// Peak demand within the window.
    pub fn window_peak(&self) -> f64 {
        self.recent.iter().copied().fold(0.0, f64::max)
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.recent.len()
    }

    /// True if no observations have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.recent.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_converges_to_constant_input() {
        let mut e = EwmaEstimator::new(0.3);
        assert!(!e.is_warm());
        assert_eq!(e.estimate(), 0.0);
        for _ in 0..100 {
            e.observe(50.0);
        }
        assert!((e.estimate() - 50.0).abs() < 1e-9);
        assert!(e.is_warm());
        e.reset();
        assert!(!e.is_warm());
    }

    #[test]
    fn ewma_tracks_level_shift_gradually() {
        let mut e = EwmaEstimator::new(0.5);
        e.observe(100.0);
        e.observe(200.0);
        // 0.5*200 + 0.5*100 = 150
        assert!((e.estimate() - 150.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn ewma_rejects_bad_alpha() {
        EwmaEstimator::new(0.0);
    }

    #[test]
    fn history_window_is_bounded() {
        let mut h = DemandHistory::new(3, 0.5, 1.0);
        for i in 0..10 {
            h.observe(i as f64);
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.last(), Some(9.0));
        assert_eq!(h.window_peak(), 9.0);
    }

    #[test]
    fn provisioning_estimate_includes_headroom_and_reacts_to_spikes() {
        let mut h = DemandHistory::new(60, 0.2, 1.1);
        for _ in 0..60 {
            h.observe(100.0);
        }
        let steady = h.provisioning_estimate();
        assert!((steady - 110.0).abs() < 1.0, "steady={steady}");
        // A sudden spike must lift the estimate well above the smoothed value.
        h.observe(500.0);
        let spiked = h.provisioning_estimate();
        assert!(spiked >= 0.8 * 500.0 * 1.1 - 1e-9, "spiked={spiked}");
    }

    #[test]
    fn empty_history_estimates_zero() {
        let h = DemandHistory::new(10, 0.5, 1.2);
        assert!(h.is_empty());
        assert_eq!(h.provisioning_estimate(), 0.0);
        assert_eq!(h.last(), None);
    }
}
