//! Seeded synthetic trace generators.
//!
//! All generators are deterministic given their seed, so every experiment in the bench
//! harness is reproducible bit-for-bit.

use crate::trace::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::f64::consts::PI;

/// A named trace family, so experiment harnesses can declare workloads by name
/// instead of wiring generator calls by hand.
///
/// Every spec builds from the same four knobs (seed, duration, off-peak floor,
/// peak); families that need fewer simply ignore the rest, so a spec plus those
/// knobs fully determines a [`Trace`] bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceSpec {
    /// Constant rate at `peak_qps` (duration only; used for throughput benches).
    Constant,
    /// [`azure_like_diurnal`]: off-peak valley, ramp, evening peak, small bursts.
    AzureDiurnal,
    /// [`twitter_like_bursty`]: noisy baseline with heavy short spikes.
    TwitterBursty,
    /// Linear ramp from `base_qps` to `peak_qps`.
    Ramp,
}

impl TraceSpec {
    /// All specs, in registry order.
    pub const ALL: [TraceSpec; 4] = [
        TraceSpec::Constant,
        TraceSpec::AzureDiurnal,
        TraceSpec::TwitterBursty,
        TraceSpec::Ramp,
    ];

    /// Stable name used by CLIs and reports.
    pub fn name(self) -> &'static str {
        match self {
            TraceSpec::Constant => "constant",
            TraceSpec::AzureDiurnal => "azure-diurnal",
            TraceSpec::TwitterBursty => "twitter-bursty",
            TraceSpec::Ramp => "ramp",
        }
    }

    /// Look a spec up by its [`TraceSpec::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Materialize the trace.
    pub fn build(self, seed: u64, duration_s: usize, base_qps: f64, peak_qps: f64) -> Trace {
        match self {
            TraceSpec::Constant => constant(duration_s, peak_qps),
            TraceSpec::AzureDiurnal => azure_like_diurnal(seed, duration_s, base_qps, peak_qps),
            TraceSpec::TwitterBursty => twitter_like_bursty(seed, duration_s, base_qps, peak_qps),
            TraceSpec::Ramp => ramp(duration_s, base_qps, peak_qps),
        }
    }
}

/// A constant-rate trace.
pub fn constant(duration_secs: usize, qps: f64) -> Trace {
    Trace::new("constant", vec![qps; duration_secs])
}

/// A linear ramp from `start_qps` to `end_qps`.
pub fn ramp(duration_secs: usize, start_qps: f64, end_qps: f64) -> Trace {
    assert!(duration_secs >= 1);
    let n = duration_secs as f64;
    let series = (0..duration_secs)
        .map(|i| start_qps + (end_qps - start_qps) * i as f64 / (n - 1.0).max(1.0))
        .collect();
    Trace::new("ramp", series)
}

/// A piecewise-constant step pattern: each `(duration_secs, qps)` pair contributes a
/// flat segment.
pub fn steps(levels: &[(usize, f64)]) -> Trace {
    let mut series = Vec::new();
    for &(dur, qps) in levels {
        series.extend(std::iter::repeat_n(qps, dur));
    }
    Trace::new("steps", series)
}

/// A sinusoidal pattern oscillating between `min_qps` and `max_qps` with the given
/// period.
pub fn sinusoid(duration_secs: usize, min_qps: f64, max_qps: f64, period_secs: usize) -> Trace {
    assert!(period_secs >= 1);
    let mid = (min_qps + max_qps) / 2.0;
    let amp = (max_qps - min_qps) / 2.0;
    let series = (0..duration_secs)
        .map(|i| mid + amp * (2.0 * PI * i as f64 / period_secs as f64).sin())
        .collect();
    Trace::new("sinusoid", series)
}

/// An Azure-Functions-like diurnal trace: a deep off-peak valley, a ramp through the
/// "day", a broad evening peak, multiplicative noise, and occasional short bursts.
///
/// `duration_secs` is the length of the generated trace (the "day" is compressed into
/// it); `base_qps` is the off-peak floor and `peak_qps` the typical peak (bursts may
/// exceed it by up to ~15%).
pub fn azure_like_diurnal(seed: u64, duration_secs: usize, base_qps: f64, peak_qps: f64) -> Trace {
    assert!(peak_qps >= base_qps && base_qps >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut series = Vec::with_capacity(duration_secs);
    let n = duration_secs as f64;
    for i in 0..duration_secs {
        let t = i as f64 / n; // position within the compressed day, [0, 1)
                              // Diurnal envelope: cosine valley centred at t=0.125 (night), peak at t=0.625.
        let phase = 2.0 * PI * (t - 0.125);
        let envelope = 0.5 - 0.5 * phase.cos(); // 0 at night, 1 at peak
        let mut qps = base_qps + (peak_qps - base_qps) * envelope;
        // Multiplicative noise (~±5%).
        qps *= 1.0 + rng.gen_range(-0.05..0.05);
        // Occasional short bursts (~1% of seconds), up to +15% of the peak.
        if rng.gen_bool(0.01) {
            qps += peak_qps * rng.gen_range(0.05..0.15);
        }
        series.push(qps.max(0.0));
    }
    Trace::new("azure_like_diurnal", series)
}

/// A Twitter-like bursty trace: a slowly-varying baseline with frequent small bursts
/// and rare large spikes (e.g. a viral event), on top of a mild diurnal swing.
pub fn twitter_like_bursty(seed: u64, duration_secs: usize, base_qps: f64, peak_qps: f64) -> Trace {
    assert!(peak_qps >= base_qps && base_qps >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut series = Vec::with_capacity(duration_secs);
    let n = duration_secs as f64;
    let mut spike_remaining = 0usize;
    let mut spike_level = 0.0;
    for i in 0..duration_secs {
        let t = i as f64 / n;
        // Mild diurnal swing between base and ~70% of peak.
        let envelope = 0.5 - 0.5 * (2.0 * PI * (t - 0.1)).cos();
        let mut qps = base_qps + (0.7 * peak_qps - base_qps).max(0.0) * envelope;
        // Frequent small bursts.
        if rng.gen_bool(0.05) {
            qps += peak_qps * rng.gen_range(0.02..0.08);
        }
        // Rare sustained spikes reaching the peak.
        if spike_remaining == 0 && rng.gen_bool(0.002) {
            spike_remaining = rng.gen_range(20..90);
            spike_level = peak_qps * rng.gen_range(0.85..1.0);
        }
        if spike_remaining > 0 {
            spike_remaining -= 1;
            qps = qps.max(spike_level);
        }
        // Noise.
        qps *= 1.0 + rng.gen_range(-0.08..0.08);
        series.push(qps.max(0.0));
    }
    Trace::new("twitter_like_bursty", series)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_and_ramp_shapes() {
        let c = constant(10, 42.0);
        assert!(c.series().iter().all(|&q| q == 42.0));
        let r = ramp(11, 0.0, 100.0);
        assert!((r.series()[0] - 0.0).abs() < 1e-9);
        assert!((r.series()[10] - 100.0).abs() < 1e-9);
        // monotone
        assert!(r.series().windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn steps_concatenate_segments() {
        let s = steps(&[(3, 10.0), (2, 50.0)]);
        assert_eq!(s.series(), &[10.0, 10.0, 10.0, 50.0, 50.0]);
    }

    #[test]
    fn sinusoid_stays_within_bounds() {
        let s = sinusoid(500, 10.0, 90.0, 100);
        for &q in s.series() {
            assert!((10.0 - 1e-9..=90.0 + 1e-9).contains(&q));
        }
        // It should actually reach close to both extremes.
        assert!(s.peak_qps() > 85.0);
        assert!(s.min_qps() < 15.0);
    }

    #[test]
    fn diurnal_trace_is_deterministic_and_shaped() {
        let a = azure_like_diurnal(7, 3600, 50.0, 800.0);
        let b = azure_like_diurnal(7, 3600, 50.0, 800.0);
        assert_eq!(a.series(), b.series());
        let c = azure_like_diurnal(8, 3600, 50.0, 800.0);
        assert_ne!(a.series(), c.series());
        // Valley is near the base, peak near (or slightly above) the requested peak.
        assert!(a.min_qps() < 120.0);
        assert!(a.peak_qps() > 700.0);
        assert!(a.peak_qps() < 800.0 * 1.25);
        // Off-peak (first tenth) is much lower than the peak region.
        let early: f64 = a.series()[..360].iter().sum::<f64>() / 360.0;
        let late: f64 = a.series()[1800..2520].iter().sum::<f64>() / 720.0;
        assert!(late > 2.0 * early);
    }

    #[test]
    fn bursty_trace_has_spikes() {
        let t = twitter_like_bursty(11, 7200, 100.0, 1000.0);
        assert_eq!(t.duration_secs(), 7200);
        // Some seconds reach near the peak even though the baseline is far below it.
        assert!(t.peak_qps() > 800.0);
        let mean = t.mean_qps();
        assert!(mean < 0.75 * t.peak_qps());
        assert!(t.min_qps() >= 0.0);
    }

    #[test]
    fn trace_specs_roundtrip_names_and_build_deterministically() {
        for spec in TraceSpec::ALL {
            assert_eq!(TraceSpec::from_name(spec.name()), Some(spec));
            let a = spec.build(9, 120, 20.0, 200.0);
            let b = spec.build(9, 120, 20.0, 200.0);
            assert_eq!(a.series(), b.series());
            assert_eq!(a.duration_secs(), 120);
        }
        assert_eq!(TraceSpec::from_name("no-such-trace"), None);
        // Constant ignores the base and runs at the peak rate.
        let c = TraceSpec::Constant.build(0, 10, 1.0, 77.0);
        assert!(c.series().iter().all(|&q| q == 77.0));
    }

    #[test]
    fn generators_never_produce_negative_rates() {
        for seed in 0..5 {
            let a = azure_like_diurnal(seed, 1000, 0.0, 500.0);
            let b = twitter_like_bursty(seed, 1000, 0.0, 500.0);
            assert!(a.series().iter().all(|&q| q >= 0.0));
            assert!(b.series().iter().all(|&q| q >= 0.0));
        }
    }
}
