//! # loki-workload
//!
//! Synthetic query-arrival workloads for the Loki reproduction.
//!
//! The paper drives its two pipelines with (a) one day of the Microsoft Azure Functions
//! trace and (b) a Twitter streaming trace, both rescaled with shape-preserving
//! transformations to match the capacity of the evaluation cluster, and both used only
//! as *per-second arrival-rate series* (the request contents come from separate image
//! datasets and only matter through the intermediate queries they spawn).
//!
//! Neither trace can be redistributed here, so this crate generates seeded synthetic
//! series with the same qualitative shape:
//!
//! * [`generators::azure_like_diurnal`] — a diurnal pattern with an off-peak valley,
//!   morning ramp, evening peak, and small stochastic bursts (Azure-Functions-like);
//! * [`generators::twitter_like_bursty`] — a noisy baseline with heavy short spikes
//!   (Twitter-like);
//! * deterministic shapes (ramp, step, constant, sinusoid) for controlled experiments.
//!
//! [`trace::Trace`] holds a per-second QPS series and provides the shape-preserving
//! scaling the paper applies; [`arrivals`] expands a trace into individual arrival
//! timestamps (Poisson or evenly spaced); [`estimator::EwmaEstimator`] is the
//! exponentially-weighted moving-average demand estimator the Resource Manager uses.

pub mod arrivals;
pub mod estimator;
pub mod generators;
pub mod trace;

pub use arrivals::{generate_arrivals, ArrivalProcess};
pub use estimator::{DemandHistory, EwmaEstimator, SeasonalEstimator};
pub use generators::TraceSpec;
pub use trace::Trace;
