//! Per-second query-arrival-rate traces and shape-preserving transformations.

use serde::{Deserialize, Serialize};

/// A workload trace: the query arrival rate (queries per second) for each second of an
/// experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    name: String,
    qps: Vec<f64>,
}

impl Trace {
    /// Create a trace from a per-second QPS series.
    pub fn new(name: impl Into<String>, qps: Vec<f64>) -> Self {
        assert!(!qps.is_empty(), "a trace must cover at least one second");
        assert!(
            qps.iter().all(|q| q.is_finite() && *q >= 0.0),
            "QPS values must be finite and non-negative"
        );
        Self {
            name: name.into(),
            qps,
        }
    }

    /// The trace name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Duration in seconds.
    pub fn duration_secs(&self) -> usize {
        self.qps.len()
    }

    /// The QPS during second `sec` (clamped to the last second for out-of-range
    /// queries, which keeps long simulations well-defined).
    pub fn qps_at(&self, sec: usize) -> f64 {
        let idx = sec.min(self.qps.len() - 1);
        self.qps[idx]
    }

    /// The full per-second series.
    pub fn series(&self) -> &[f64] {
        &self.qps
    }

    /// Peak QPS.
    pub fn peak_qps(&self) -> f64 {
        self.qps.iter().copied().fold(0.0, f64::max)
    }

    /// Minimum QPS.
    pub fn min_qps(&self) -> f64 {
        self.qps.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Mean QPS over the whole trace.
    pub fn mean_qps(&self) -> f64 {
        self.qps.iter().sum::<f64>() / self.qps.len() as f64
    }

    /// Total number of expected queries over the trace.
    pub fn total_queries(&self) -> f64 {
        self.qps.iter().sum()
    }

    /// Multiply every point by `factor` (shape-preserving).
    pub fn scale_by(&self, factor: f64) -> Trace {
        assert!(factor.is_finite() && factor >= 0.0);
        Trace {
            name: format!("{}*{factor:.3}", self.name),
            qps: self.qps.iter().map(|q| q * factor).collect(),
        }
    }

    /// Rescale so the peak equals `peak_qps` (the paper's shape-preserving
    /// transformation that matches a trace to the capacity of the cluster).
    pub fn scale_to_peak(&self, peak_qps: f64) -> Trace {
        let current = self.peak_qps();
        if current <= 0.0 {
            return Trace::new(self.name.clone(), vec![0.0; self.qps.len()]);
        }
        self.scale_by(peak_qps / current)
    }

    /// Keep only seconds `[start, end)`.
    pub fn slice(&self, start: usize, end: usize) -> Trace {
        assert!(start < end && end <= self.qps.len(), "invalid slice range");
        Trace {
            name: format!("{}[{start}..{end}]", self.name),
            qps: self.qps[start..end].to_vec(),
        }
    }

    /// Moving-average smoothing with the given window (in seconds).
    pub fn smooth(&self, window: usize) -> Trace {
        assert!(window >= 1);
        let n = self.qps.len();
        let mut out = Vec::with_capacity(n);
        let mut sum = 0.0;
        let mut queue = std::collections::VecDeque::new();
        for i in 0..n {
            queue.push_back(self.qps[i]);
            sum += self.qps[i];
            if queue.len() > window {
                sum -= queue.pop_front().unwrap();
            }
            out.push(sum / queue.len() as f64);
        }
        Trace {
            name: format!("{}~{window}s", self.name),
            qps: out,
        }
    }

    /// Stretch or compress the trace to a new duration, preserving its shape by linear
    /// interpolation. Useful for fitting a day-long trace into a shorter simulation.
    pub fn resample(&self, new_duration_secs: usize) -> Trace {
        assert!(new_duration_secs >= 1);
        let n = self.qps.len();
        if n == 1 {
            return Trace::new(self.name.clone(), vec![self.qps[0]; new_duration_secs]);
        }
        let mut out = Vec::with_capacity(new_duration_secs);
        for i in 0..new_duration_secs {
            let pos = i as f64 / (new_duration_secs.max(2) - 1) as f64 * (n - 1) as f64;
            let lo = pos.floor() as usize;
            let hi = (lo + 1).min(n - 1);
            let frac = pos - lo as f64;
            out.push(self.qps[lo] * (1.0 - frac) + self.qps[hi] * frac);
        }
        Trace {
            name: format!("{}@{new_duration_secs}s", self.name),
            qps: out,
        }
    }

    /// Concatenate another trace after this one.
    pub fn concat(&self, other: &Trace) -> Trace {
        let mut qps = self.qps.clone();
        qps.extend_from_slice(&other.qps);
        Trace {
            name: format!("{}+{}", self.name, other.name),
            qps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(values: &[f64]) -> Trace {
        Trace::new("t", values.to_vec())
    }

    #[test]
    fn basic_statistics() {
        let tr = t(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(tr.duration_secs(), 4);
        assert_eq!(tr.peak_qps(), 40.0);
        assert_eq!(tr.min_qps(), 10.0);
        assert_eq!(tr.mean_qps(), 25.0);
        assert_eq!(tr.total_queries(), 100.0);
        assert_eq!(tr.qps_at(2), 30.0);
        // out of range clamps to last value
        assert_eq!(tr.qps_at(1000), 40.0);
    }

    #[test]
    fn scaling_preserves_shape() {
        let tr = t(&[10.0, 20.0, 40.0]);
        let scaled = tr.scale_to_peak(100.0);
        assert_eq!(scaled.series(), &[25.0, 50.0, 100.0]);
        let doubled = tr.scale_by(2.0);
        assert_eq!(doubled.series(), &[20.0, 40.0, 80.0]);
        // ratios between points are unchanged
        assert!((scaled.series()[1] / scaled.series()[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slice_and_concat() {
        let tr = t(&[1.0, 2.0, 3.0, 4.0]);
        let s = tr.slice(1, 3);
        assert_eq!(s.series(), &[2.0, 3.0]);
        let c = s.concat(&t(&[9.0]));
        assert_eq!(c.series(), &[2.0, 3.0, 9.0]);
    }

    #[test]
    fn smoothing_reduces_variance() {
        let tr = t(&[0.0, 100.0, 0.0, 100.0, 0.0, 100.0]);
        let sm = tr.smooth(3);
        let var = |xs: &[f64]| {
            let m = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
        };
        assert!(var(sm.series()) < var(tr.series()));
        assert_eq!(sm.duration_secs(), tr.duration_secs());
    }

    #[test]
    fn resample_preserves_endpoints() {
        let tr = t(&[10.0, 20.0, 30.0]);
        let up = tr.resample(5);
        assert_eq!(up.duration_secs(), 5);
        assert!((up.series()[0] - 10.0).abs() < 1e-9);
        assert!((up.series()[4] - 30.0).abs() < 1e-9);
        let down = tr.resample(2);
        assert!((down.series()[0] - 10.0).abs() < 1e-9);
        assert!((down.series()[1] - 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one second")]
    fn empty_trace_rejected() {
        Trace::new("x", vec![]);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_qps_rejected() {
        Trace::new("x", vec![1.0, -2.0]);
    }
}
