//! What-if capacity planning with the Loki performance models: how many QPS can a
//! cluster of a given size absorb at maximum accuracy, and how much extra headroom does
//! accuracy scaling buy before requests must be dropped?
//!
//! Run: `cargo run --release --example capacity_planning`

use loki::core::perf::{FanoutOverrides, PerfModel};
use loki::prelude::*;

fn main() {
    let graph = zoo::traffic_analysis_pipeline(250.0);
    let perf = PerfModel::new(&graph, 2.0, 2.0);
    let fanout = FanoutOverrides::new();
    let best: Vec<usize> = graph
        .tasks()
        .map(|(_, t)| t.most_accurate_variant())
        .collect();
    let worst: Vec<usize> = graph
        .tasks()
        .map(|(_, t)| t.least_accurate_variant())
        .collect();

    println!("# Capacity planning for the traffic-analysis pipeline (SLO 250 ms)");
    println!(
        "{:>8} {:>18} {:>18} {:>10}",
        "workers", "max_acc_qps", "min_acc_qps", "gain"
    );
    for cluster in [4usize, 8, 12, 16, 20, 32, 64] {
        let hi = perf.max_servable_demand(&best, cluster, &fanout);
        let lo = perf.max_servable_demand(&worst, cluster, &fanout);
        println!(
            "{:>8} {:>18.0} {:>18.0} {:>9.2}x",
            cluster,
            hi,
            lo,
            lo / hi.max(1.0)
        );
    }
    println!("\nAccuracy scaling multiplies the effective capacity of every cluster size by ~3x,");
    println!("which is what lets a fixed 20-GPU cluster ride out demand spikes without dropping requests.");
}
