//! Quickstart: build a small pipeline, let the Loki controller allocate resources for a
//! few demand levels, and run a short end-to-end simulation.
//!
//! Run: `cargo run --release --example quickstart`

use loki::prelude::*;

fn main() {
    // 1. A small two-task pipeline (see `zoo::traffic_analysis_pipeline` for the real one).
    let graph = zoo::tiny_pipeline(100.0);
    println!(
        "pipeline `{}`: {} tasks, {} variants, accuracy range {:.2}..{:.2}",
        graph.name(),
        graph.num_tasks(),
        graph.num_variants(),
        graph.min_accuracy(),
        graph.max_accuracy()
    );

    // 2. Ask the Resource Manager what it would provision at different demand levels.
    let mut controller = LokiController::new(graph.clone(), LokiConfig::with_greedy());
    for demand in [50.0, 400.0, 1500.0] {
        let out = controller.allocate_for_demand(demand, 8);
        println!(
            "demand {demand:>6.0} qps -> {:?} scaling, {} servers, expected accuracy {:.3}",
            out.mode, out.servers_used, out.expected_accuracy
        );
    }

    // 3. Run a short simulation on an 8-worker cluster with a ramping workload.
    let trace = generators::ramp(60, 50.0, 600.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 7);
    let controller = LokiController::new(graph.clone(), LokiConfig::with_greedy());
    let config = SimConfig {
        cluster_size: 8,
        initial_demand_hint: Some(trace.qps_at(0)),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(&graph, config, controller);
    let result = sim.run(&arrivals);
    println!(
        "simulated {} requests: {:.2}% SLO violations, system accuracy {:.3}, mean utilization {:.0}%",
        result.summary.total_arrivals,
        100.0 * result.summary.slo_violation_ratio,
        result.summary.system_accuracy,
        100.0 * result.summary.mean_utilization
    );
}
