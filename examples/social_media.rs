//! The paper's social-media scenario: image classification feeding image captioning,
//! comparing Loki with a Proteus-style pipeline-agnostic accuracy-scaling controller.
//!
//! Run: `cargo run --release --example social_media`

use loki::prelude::*;

fn main() {
    let graph = zoo::social_media_pipeline(250.0);
    let trace = generators::twitter_like_bursty(11, 600, 60.0, 900.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 11);
    let config = SimConfig {
        cluster_size: 20,
        initial_demand_hint: Some(trace.qps_at(0)),
        ..SimConfig::default()
    };

    let mut loki_sim = Simulation::new(
        &graph,
        config.clone(),
        LokiController::new(graph.clone(), LokiConfig::with_greedy()),
    );
    let loki = loki_sim.run(&arrivals);

    let mut proteus_sim = Simulation::new(
        &graph,
        config,
        ProteusController::with_defaults(graph.clone()),
    );
    let proteus = proteus_sim.run(&arrivals);

    println!(
        "{:<10} {:>12} {:>12} {:>14}",
        "system", "slo_viol", "accuracy", "mean_util"
    );
    for (name, r) in [("loki", &loki), ("proteus", &proteus)] {
        println!(
            "{:<10} {:>12.4} {:>12.4} {:>14.3}",
            name,
            r.summary.slo_violation_ratio,
            r.summary.system_accuracy,
            r.summary.mean_utilization
        );
    }
    println!(
        "\nLoki keeps violations {:.1}x lower while using as few as {} of 20 workers off-peak.",
        proteus.summary.slo_violation_ratio / loki.summary.slo_violation_ratio.max(1e-6),
        loki.summary.min_active_workers
    );
}
