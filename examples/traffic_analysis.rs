//! The paper's traffic-analysis scenario: object detection feeding car classification
//! and facial recognition, served by Loki on a 20-GPU cluster under a diurnal workload.
//!
//! Run: `cargo run --release --example traffic_analysis`

use loki::prelude::*;

fn main() {
    let graph = zoo::traffic_analysis_pipeline(250.0);

    // Phase analysis (Figure 1): where does hardware scaling end?
    let mut controller = LokiController::new(graph.clone(), LokiConfig::with_greedy());
    let mut hw_capacity = 0.0f64;
    for demand in (50..3000).step_by(50) {
        let out = controller.allocate_for_demand(demand as f64, 20);
        if out.mode == ScalingMode::Hardware {
            hw_capacity = out.servable_demand;
        }
    }
    println!("hardware-scaling capacity of 20 workers at max accuracy: {hw_capacity:.0} QPS");

    // A compressed diurnal day that peaks well above that capacity.
    let trace = generators::azure_like_diurnal(3, 600, 60.0, hw_capacity * 2.0);
    let arrivals = generate_arrivals(&trace, ArrivalProcess::Poisson, 3);
    let controller = LokiController::new(graph.clone(), LokiConfig::with_greedy());
    let config = SimConfig {
        cluster_size: 20,
        initial_demand_hint: Some(trace.qps_at(0)),
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(&graph, config, controller);
    let result = sim.run(&arrivals);
    println!(
        "day peak {:.0} QPS: violations {:.2}%, accuracy {:.3} (max {:.3}), active workers {}..{}",
        trace.peak_qps(),
        100.0 * result.summary.slo_violation_ratio,
        result.summary.system_accuracy,
        graph.max_accuracy(),
        result.summary.min_active_workers,
        result.summary.max_active_workers,
    );
    println!(
        "During the off-peak valley Loki powers most of the cluster down; at the peak it trades"
    );
    println!("a little accuracy for throughput instead of dropping requests.");
}
