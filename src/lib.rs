//! # loki
//!
//! A from-scratch Rust reproduction of **Loki: A System for Serving ML Inference
//! Pipelines with Hardware and Accuracy Scaling** (HPDC 2024), including every
//! substrate the system depends on: a MILP solver, a discrete-event GPU-cluster
//! simulator, synthetic workload generators, a model-variant profile zoo, and the two
//! baseline serving systems from the paper's evaluation.
//!
//! This crate is a facade that re-exports the workspace crates under one roof; see the
//! individual crates for the full APIs:
//!
//! * [`pipeline`] (`loki-pipeline`) — pipeline graphs, model variants, the model zoo;
//! * [`workload`] (`loki-workload`) — traces, arrival processes, demand estimators;
//! * [`sim`] (`loki-sim`) — the discrete-event cluster simulator;
//! * [`milp`] (`loki-milp`) — the simplex + branch-and-bound MILP solver;
//! * [`core`] (`loki-core`) — the Loki controller (Resource Manager + Load Balancer);
//! * [`baselines`] (`loki-baselines`) — InferLine-style and Proteus-style controllers.
//!
//! ## Quickstart
//!
//! ```
//! use loki::core::{LokiConfig, LokiController};
//! use loki::pipeline::zoo;
//!
//! // Build the paper's traffic-analysis pipeline with a 250 ms SLO and ask the
//! // Resource Manager what it would do on a 20-GPU cluster at 100 QPS.
//! let graph = zoo::traffic_analysis_pipeline(250.0);
//! let mut controller = LokiController::new(graph, LokiConfig::with_greedy());
//! let outcome = controller.allocate_for_demand(100.0, 20);
//! assert_eq!(outcome.mode, loki::core::ScalingMode::Hardware);
//! assert!(outcome.servers_used < 20);
//! ```

pub use loki_baselines as baselines;
pub use loki_core as core;
pub use loki_milp as milp;
pub use loki_pipeline as pipeline;
pub use loki_sim as sim;
pub use loki_workload as workload;

/// Convenience prelude re-exporting the types most programs need.
pub mod prelude {
    pub use loki_baselines::{InferLineController, ProteusController};
    pub use loki_core::{AllocationOutcome, LokiConfig, LokiController, ScalingMode};
    pub use loki_pipeline::{zoo, AugmentedGraph, ModelVariant, PipelineGraph, VariantId};
    pub use loki_sim::{Controller, DropPolicy, SimConfig, SimResult, Simulation};
    pub use loki_workload::{generate_arrivals, generators, ArrivalProcess, Trace};
}
