//! Cross-crate integration tests: the full Loki stack (pipeline zoo + workload +
//! simulator + controller) compared against the baselines on short workloads.

use loki::prelude::*;

fn short_config(hint: f64) -> SimConfig {
    SimConfig {
        cluster_size: 20,
        control_interval_s: 5.0,
        initial_demand_hint: Some(hint),
        drain_s: 15.0,
        ..SimConfig::default()
    }
}

fn run<C: Controller>(graph: &PipelineGraph, trace: &Trace, controller: C) -> SimResult {
    let arrivals = generate_arrivals(trace, ArrivalProcess::Poisson, 99);
    let mut sim = Simulation::new(graph, short_config(trace.qps_at(0)), controller);
    sim.run(&arrivals)
}

#[test]
fn loki_matches_inferline_at_low_demand_with_fewer_or_equal_servers() {
    let graph = zoo::traffic_analysis_pipeline(250.0);
    let trace = generators::constant(30, 150.0);
    let loki = run(
        &graph,
        &trace,
        LokiController::new(graph.clone(), LokiConfig::with_greedy()),
    );
    let inferline = run(
        &graph,
        &trace,
        InferLineController::with_defaults(graph.clone()),
    );
    // Both serve comfortably at max accuracy when demand is low.
    assert!(loki.summary.slo_violation_ratio < 0.05);
    assert!(inferline.summary.slo_violation_ratio < 0.05);
    assert!((loki.summary.system_accuracy - graph.max_accuracy()).abs() < 1e-6);
    // Neither needs the whole cluster.
    assert!(loki.summary.max_active_workers < 20);
    assert!(inferline.summary.max_active_workers < 20);
}

#[test]
fn loki_beats_hardware_scaling_only_under_overload() {
    let graph = zoo::traffic_analysis_pipeline(250.0);
    // Roughly twice the cluster's maximum-accuracy capacity.
    let trace = generators::constant(30, 1400.0);
    let loki = run(
        &graph,
        &trace,
        LokiController::new(graph.clone(), LokiConfig::with_greedy()),
    );
    let inferline = run(
        &graph,
        &trace,
        InferLineController::with_defaults(graph.clone()),
    );
    assert!(
        loki.summary.slo_violation_ratio < 0.25,
        "loki violations {}",
        loki.summary.slo_violation_ratio
    );
    assert!(
        inferline.summary.slo_violation_ratio > 2.0 * loki.summary.slo_violation_ratio,
        "inferline {} vs loki {}",
        inferline.summary.slo_violation_ratio,
        loki.summary.slo_violation_ratio
    );
    // Loki pays with accuracy, not with violations.
    assert!(loki.summary.system_accuracy < graph.max_accuracy());
}

#[test]
fn loki_uses_fewer_servers_than_proteus_off_peak() {
    let graph = zoo::traffic_analysis_pipeline(250.0);
    let trace = generators::constant(30, 100.0);
    let loki = run(
        &graph,
        &trace,
        LokiController::new(graph.clone(), LokiConfig::with_greedy()),
    );
    let proteus = run(
        &graph,
        &trace,
        ProteusController::with_defaults(graph.clone()),
    );
    assert_eq!(proteus.summary.max_active_workers, 20);
    assert!(
        (loki.summary.max_active_workers as f64) < 0.6 * 20.0,
        "loki active workers {}",
        loki.summary.max_active_workers
    );
}

#[test]
fn social_media_pipeline_end_to_end() {
    // A gentle ramp (slow relative to the 5 s control interval) that stays within the
    // cluster's maximum-accuracy capacity: Loki should track it with hardware scaling
    // and keep violations low.
    let graph = zoo::social_media_pipeline(250.0);
    let trace = generators::ramp(60, 100.0, 450.0);
    let loki = run(
        &graph,
        &trace,
        LokiController::new(graph.clone(), LokiConfig::with_greedy()),
    );
    assert!(loki.summary.total_arrivals > 10_000);
    assert!(
        loki.summary.slo_violation_ratio < 0.1,
        "violations {}",
        loki.summary.slo_violation_ratio
    );
    assert!(loki.summary.system_accuracy > graph.min_accuracy());
    assert!(loki.summary.max_active_workers < 20);
}

#[test]
fn drop_policy_ablation_orders_as_expected() {
    // Opportunistic rerouting should not be worse than doing nothing at all.
    let graph = zoo::traffic_analysis_pipeline(250.0);
    let trace = generators::constant(25, 1200.0);
    let mut results = Vec::new();
    for policy in DropPolicy::all() {
        let mut config = LokiConfig::with_greedy();
        config.drop_policy = policy;
        let r = run(&graph, &trace, LokiController::new(graph.clone(), config));
        results.push((policy, r.summary.slo_violation_ratio));
    }
    let get = |p: DropPolicy| results.iter().find(|(x, _)| *x == p).unwrap().1;
    let none = get(DropPolicy::NoEarlyDropping);
    let rerouting = get(DropPolicy::OpportunisticRerouting);
    assert!(
        rerouting <= none + 0.05,
        "rerouting {rerouting} should not be much worse than no dropping {none}"
    );
}
