//! Property-based tests over the core data structures and invariants, spanning the
//! MILP solver, the pipeline graphs, the workload generators, and the allocators.

use loki::core::allocator::{AllocationContext, Allocator};
use loki::core::greedy::GreedyAllocator;
use loki::core::perf::{FanoutOverrides, PerfModel};
use loki::milp::{Model, ObjectiveSense, Sense, VarType};
use loki::pipeline::{AugmentedGraph, LatencyProfile, ModelVariant, PipelineGraph};
use loki::sim::DropPolicy;
use loki::workload::{generate_arrivals, ArrivalProcess, Trace};
use proptest::prelude::*;

// ---------- MILP solver ------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Knapsack instances: the MILP solution is feasible and at least as good as the
    /// classic greedy-by-density heuristic rounded to feasibility.
    #[test]
    fn milp_knapsack_beats_greedy(
        values in prop::collection::vec(1.0f64..50.0, 3..8),
        weights in prop::collection::vec(1.0f64..20.0, 3..8),
        cap_frac in 0.2f64..0.9,
    ) {
        let n = values.len().min(weights.len());
        let values = &values[..n];
        let weights = &weights[..n];
        let capacity = cap_frac * weights.iter().sum::<f64>();

        let mut m = Model::new("knapsack");
        let vars: Vec<_> = (0..n).map(|i| m.add_var(format!("x{i}"), VarType::Binary, 0.0, 1.0)).collect();
        let weight_expr: loki::milp::LinExpr = vars.iter().zip(weights).map(|(&v, &w)| w * v).sum();
        let value_expr: loki::milp::LinExpr = vars.iter().zip(values).map(|(&v, &val)| val * v).sum();
        m.add_constraint("cap", weight_expr, Sense::Le, capacity);
        m.set_objective(ObjectiveSense::Maximize, value_expr);
        let sol = m.solve().unwrap();
        prop_assert!(m.is_feasible(&sol.values, 1e-6));

        // Greedy by value density.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| (values[b] / weights[b]).partial_cmp(&(values[a] / weights[a])).unwrap());
        let mut used = 0.0;
        let mut greedy_value = 0.0;
        for i in order {
            if used + weights[i] <= capacity {
                used += weights[i];
                greedy_value += values[i];
            }
        }
        prop_assert!(sol.objective >= greedy_value - 1e-6);
    }

    /// LP relaxations always bound the integer optimum.
    #[test]
    fn lp_relaxation_bounds_milp(
        coeffs in prop::collection::vec(1.0f64..10.0, 2..5),
        bounds in prop::collection::vec(2.0f64..12.0, 2..5),
    ) {
        let n = coeffs.len().min(bounds.len());
        let mut m = Model::new("bound");
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("x{i}"), VarType::Integer, 0.0, bounds[i]))
            .collect();
        let total: loki::milp::LinExpr = vars.iter().map(|&v| 1.0 * v).sum();
        m.add_constraint("sum", total, Sense::Le, bounds.iter().sum::<f64>() * 0.6);
        let obj: loki::milp::LinExpr = vars.iter().zip(&coeffs).map(|(&v, &c)| c * v).sum();
        m.set_objective(ObjectiveSense::Maximize, obj);
        let milp = m.solve().unwrap();
        let lp = m.solve_relaxation(&[]).unwrap();
        prop_assert!(lp.objective >= milp.objective - 1e-6);
        prop_assert!(m.is_feasible(&milp.values, 1e-6));
    }
}

// ---------- Pipeline graphs ----------------------------------------------------------

fn arb_chain_pipeline() -> impl Strategy<Value = PipelineGraph> {
    // 2-4 tasks, 1-4 variants each, random accuracies/latencies/mult factors.
    prop::collection::vec(
        prop::collection::vec((0.5f64..1.0, 1.0f64..5.0, 1.0f64..6.0, 0.5f64..2.0), 1..5),
        2..5,
    )
    .prop_map(|tasks| {
        let mut g = PipelineGraph::new("random_chain", 400.0);
        let mut prev = None;
        for (ti, variants) in tasks.into_iter().enumerate() {
            let max_acc = variants.iter().map(|(a, ..)| *a).fold(f64::MIN, f64::max);
            let vs: Vec<ModelVariant> = variants
                .into_iter()
                .enumerate()
                .map(|(k, (acc, alpha, beta, mult))| {
                    ModelVariant::new(
                        format!("t{ti}v{k}"),
                        format!("fam{ti}"),
                        (acc / max_acc).min(1.0),
                        LatencyProfile::new(alpha, beta),
                        mult,
                    )
                })
                .collect();
            let id = g.add_task(format!("task{ti}"), vs);
            if let Some(p) = prev {
                g.add_edge(p, id, 1.0);
            }
            prev = Some(id);
        }
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The augmented graph enumerates exactly the cross product of variant choices and
    /// its per-path accuracy always sits between the pipeline's min and max accuracy.
    #[test]
    fn augmented_graph_invariants(graph in arb_chain_pipeline()) {
        prop_assert!(graph.validate().is_ok());
        let aug = AugmentedGraph::new(&graph);
        let expected: usize = graph.tasks().map(|(_, t)| t.variants.len()).product();
        prop_assert_eq!(aug.num_paths(), expected);
        let lo = graph.min_accuracy() - 1e-9;
        let hi = graph.max_accuracy() + 1e-9;
        for p in aug.paths() {
            prop_assert!(p.accuracy >= lo && p.accuracy <= hi);
            // Arrival multipliers start at 1 and are monotone products of positive factors.
            prop_assert!((p.arrival_multipliers[0] - 1.0).abs() < 1e-12);
            prop_assert!(p.arrival_multipliers.iter().all(|&m| m > 0.0));
        }
    }

    /// The greedy allocator never exceeds the cluster and its expected accuracy stays
    /// within the pipeline's achievable range.
    #[test]
    fn greedy_allocator_invariants(
        graph in arb_chain_pipeline(),
        demand in 1.0f64..3000.0,
        cluster in 2usize..40,
    ) {
        let fanout = FanoutOverrides::new();
        let ctx = AllocationContext {
            graph: &graph,
            cluster_size: cluster,
            demand_qps: demand,
            fanout: &fanout,
            drop_policy: DropPolicy::OpportunisticRerouting,
            slo_divisor: 2.0,
            budgets: loki_sim::HopBudgets::uniform(2.0, graph.num_tasks()),
            upgrade_with_leftover: true,
        };
        let out = GreedyAllocator::new().allocate(&ctx);
        prop_assert!(out.plan.total_workers() <= cluster);
        prop_assert!(out.expected_accuracy <= graph.max_accuracy() + 1e-9);
        prop_assert!(out.expected_accuracy >= 0.0);
        // Every planned batch respects the allowed batch sizes.
        for spec in &out.plan.instances {
            prop_assert!(graph.batch_sizes().contains(&spec.max_batch));
        }
    }

    /// Demand propagation is linear in the root demand.
    #[test]
    fn task_demands_scale_linearly(graph in arb_chain_pipeline(), demand in 1.0f64..500.0) {
        let perf = PerfModel::new(&graph, 2.0, 2.0);
        let fanout = FanoutOverrides::new();
        let choice: Vec<usize> = graph.tasks().map(|(_, t)| t.most_accurate_variant()).collect();
        let d1 = perf.task_demands(&choice, demand, &fanout);
        let d2 = perf.task_demands(&choice, 2.0 * demand, &fanout);
        for (a, b) in d1.iter().zip(d2.iter()) {
            prop_assert!((2.0 * a - b).abs() < 1e-6 * b.max(1.0));
        }
    }
}

// ---------- Workloads ----------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shape-preserving scaling preserves ratios between points.
    #[test]
    fn trace_scaling_preserves_shape(
        qps in prop::collection::vec(1.0f64..500.0, 2..50),
        peak in 10.0f64..5000.0,
    ) {
        let trace = Trace::new("t", qps);
        let scaled = trace.scale_to_peak(peak);
        prop_assert!((scaled.peak_qps() - peak).abs() < 1e-6);
        let r0 = trace.series()[0] / trace.peak_qps();
        let r1 = scaled.series()[0] / scaled.peak_qps();
        prop_assert!((r0 - r1).abs() < 1e-9);
    }

    /// Uniform arrivals are sorted, within range, and match the integral of the rate.
    #[test]
    fn uniform_arrivals_match_rate(qps in prop::collection::vec(0.0f64..200.0, 1..30)) {
        let trace = Trace::new("t", qps);
        let arrivals = generate_arrivals(&trace, ArrivalProcess::Uniform, 0);
        prop_assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(arrivals.iter().all(|&t| t >= 0.0 && t < trace.duration_secs() as f64));
        let expected = trace.total_queries().floor();
        prop_assert!((arrivals.len() as f64 - expected).abs() <= 1.0 + 1e-9);
    }
}
