//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion API the workspace's benches use —
//! `Criterion::benchmark_group`, `sample_size`, `throughput`, `bench_function`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros — as a
//! plain wall-clock harness. Each sample times one closure invocation; the
//! report prints min/mean/median per iteration plus derived throughput.
//!
//! CLI behaviour mirrors what `cargo bench` / `cargo test --benches` expect:
//! the first non-flag argument is a substring filter on benchmark names, and
//! `--test` runs every benchmark exactly once (smoke mode) without timing.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group (per-iteration work).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
            measurement_time: None,
        }
    }

    /// Final configuration hook used by `criterion_group!` (no-op here).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    measurement_time: Option<Duration>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput for the report.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for API compatibility; the stub keeps sampling fixed-count.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Run one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: if self.criterion.test_mode {
                1
            } else {
                self.sample_size
            },
            test_mode: self.criterion.test_mode,
        };
        f(&mut bencher);
        if self.criterion.test_mode {
            println!("test {full} ... ok");
            return self;
        }
        bencher.report(&full, self.throughput);
        self
    }

    /// End the group (report output is emitted eagerly per benchmark).
    pub fn finish(self) {}
}

/// Times the benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Run the closure `sample_size` times (after one warm-up run), timing each
    /// invocation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f());
        if self.test_mode {
            return;
        }
        self.samples.clear();
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{name}: no samples collected");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let total: Duration = sorted.iter().sum();
        let mean = total / sorted.len() as u32;
        print!(
            "{name}: min {}  mean {}  median {}  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(median),
            sorted.len()
        );
        match throughput {
            Some(Throughput::Elements(n)) => {
                let per_s = n as f64 / mean.as_secs_f64();
                print!("  thrpt {:.0} elem/s", per_s);
            }
            Some(Throughput::Bytes(n)) => {
                let per_s = n as f64 / mean.as_secs_f64();
                print!("  thrpt {:.0} B/s", per_s);
            }
            None => {}
        }
        println!();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Bundle benchmark functions into a callable group, mirroring criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion {
            filter: None,
            test_mode: false,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut runs = 0;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // one warm-up + three samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion {
            filter: Some("other".to_string()),
            test_mode: false,
        };
        let mut group = c.benchmark_group("g");
        let mut runs = 0;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert_eq!(runs, 0);
    }
}
