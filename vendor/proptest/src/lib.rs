//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property tests
//! use: the `proptest!` macro (with `#![proptest_config(...)]`), range and
//! tuple strategies, `prop::collection::vec`, `prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions. Inputs are generated from a
//! deterministic per-test seed (test name hash + case index), so failures are
//! reproducible run to run. Unlike real proptest there is **no shrinking**: a
//! failing case reports the case index and panics with the plain assertion
//! message.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::ops::Range;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic per-case RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Build the RNG for one (test, case) pair.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h ^ ((case as u64) << 32 | 0x9e37)))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values (no shrinking).
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy producing a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
}

/// Collection strategies (`prop::collection::*`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with a length drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Generate `Vec`s of `element` values with a length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        assert!(sizes.start < sizes.end, "empty vec size range");
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.sizes.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    /// The `prop::` path alias used by idiomatic proptest code
    /// (`prop::collection::vec(...)`).
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

/// Define property tests: each `fn` runs `cases` times over random inputs
/// drawn from the strategies on the right of each `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let run = || -> () { $body };
                run();
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds and vec lengths honour the size range.
        #[test]
        fn generated_values_in_bounds(
            xs in prop::collection::vec(0.0f64..10.0, 2..6),
            n in 5usize..9,
        ) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| (0.0..10.0).contains(&x)));
            prop_assert!((5..9).contains(&n));
        }

        /// prop_map applies its transform.
        #[test]
        fn prop_map_transforms(v in (1.0f64..2.0).prop_map(|x| x * 10.0)) {
            prop_assert!((10.0..20.0).contains(&v));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..5)
            .map(|c| crate::TestRng::for_case("t", c).0.next_u64())
            .collect();
        let b: Vec<u64> = (0..5)
            .map(|c| crate::TestRng::for_case("t", c).0.next_u64())
            .collect();
        assert_eq!(a, b);
        use rand::RngCore;
        let other = crate::TestRng::for_case("other", 0).0.next_u64();
        assert_ne!(a[0], other);
    }
}
