//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the subset of the `rand 0.8` API the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen`],
//! [`Rng::gen_range`] (over `f64`/integer ranges), and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — deterministic for a
//! given seed (which is all the simulator relies on), fast, and with more than
//! adequate statistical quality for Monte Carlo workloads. It intentionally
//! does **not** reproduce the stream of the real `rand::rngs::StdRng`
//! (ChaCha12); nothing in this workspace depends on that stream.

use std::ops::Range;

/// Minimal core-RNG interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an RNG (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can be sampled uniformly to produce a `T`. Generic over the
/// output type (like the real rand) so integer literals in ranges infer their
/// type from the call site.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty or inverted gen_range range");
        let u = f64::sample(rng);
        let v = self.start + u * (self.end - self.start);
        // Floating rounding can land exactly on `end`; clamp back into range.
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty or inverted gen_range range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); bias is < 2^-64 and
                // irrelevant for simulation purposes.
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing RNG interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        f64::sample(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// RNGs constructible from a seed (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (xoshiro256++). Stands in for
    /// `rand::rngs::StdRng`; same determinism contract, different stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let n: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&n));
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "frac {frac}");
    }
}
