//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` trait names (with blanket impls, so
//! generic bounds are always satisfiable) and re-exports the no-op derive
//! macros from the vendored `serde_derive`. This keeps the workspace's derive
//! annotations compiling without crates.io access; swapping in the real serde
//! later requires no source changes outside the manifests.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize<'de>`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
