//! Offline stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types so that a
//! future PR can turn on real serialization, but nothing currently serializes
//! through serde (JSON artifacts are written by hand). With no crates.io
//! access, these derives expand to nothing; the companion `serde` stub crate
//! provides blanket trait impls so `T: Serialize` bounds would still hold.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
